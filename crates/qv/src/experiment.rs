//! The quantum-volume experiment (paper §6.3, Fig. 7): square random
//! circuits on a 2-D grid, compiled to a native gate set with SWAP routing,
//! executed under gate-time-proportional depolarizing noise, scored by the
//! exact heavy-output probability.

use crate::gateset::GateSet;
use ashn_ir::{Basis, Circuit, SynthError};
use ashn_math::randmat::haar_su;
use ashn_math::CMat;
use ashn_route::{expand_route_ops, random_pairing, Grid, Router};
use ashn_sim::{BatchRunner, SimEngine, Simulate};
use ashn_synth::cnot_basis::CZ_DURATION;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Noise parameters of the paper's model: single-qubit gates have a fixed
/// error rate; two-qubit gates scale with their duration relative to CZ,
/// anchored at `e_cz`.
#[derive(Clone, Copy, Debug)]
pub struct QvNoise {
    /// Error rate of the flux-tuned CZ (paper sweeps 0.7%–1.7%).
    pub e_cz: f64,
    /// Error rate of every single-qubit gate (paper: 0.1%).
    pub e_1q: f64,
}

impl QvNoise {
    /// Paper defaults with a chosen `e_cz`.
    pub fn with_e_cz(e_cz: f64) -> Self {
        Self { e_cz, e_1q: 0.001 }
    }

    /// The depolarizing probability for a gate of the given duration
    /// (units `1/g`) and arity.
    pub fn rate(&self, qubits: usize, duration: f64) -> f64 {
        if qubits <= 1 {
            self.e_1q
        } else {
            (self.e_cz * duration / CZ_DURATION).min(1.0)
        }
    }
}

/// One square random model circuit: `d` layers of random pairings with
/// Haar-random `SU(4)` gates.
#[derive(Clone, Debug)]
pub struct ModelCircuit {
    /// Number of qubits (= number of layers).
    pub d: usize,
    /// Per layer: the pairing and the target unitaries.
    pub layers: Vec<Vec<((usize, usize), CMat)>>,
}

/// Samples a model circuit.
pub fn sample_model_circuit(d: usize, rng: &mut impl Rng) -> ModelCircuit {
    let layers = (0..d)
        .map(|_| {
            random_pairing(d, rng)
                .into_iter()
                .map(|p| (p, haar_su(4, rng)))
                .collect()
        })
        .collect();
    ModelCircuit { d, layers }
}

/// A compiled model circuit: the physical-site circuit plus the final
/// logical→physical placement left by the router.
#[derive(Clone, Debug)]
pub struct CompiledModel {
    /// Circuit over the physical grid sites.
    pub circuit: Circuit,
    /// `positions[l]` = physical site holding logical qubit `l` at the end.
    pub positions: Vec<usize>,
}

impl CompiledModel {
    /// Marginalizes a physical-site distribution onto the logical register
    /// (idle sites traced out, routing permutation undone).
    pub fn logical_probs(&self, physical: &[f64]) -> Vec<f64> {
        let d = self.positions.len();
        let n_sites = self.circuit.n_qubits();
        let mut out = vec![0.0; 1 << d];
        for (idx, &p) in physical.iter().enumerate() {
            let mut logical = 0usize;
            for (l, &site) in self.positions.iter().enumerate() {
                let bit = idx >> (n_sites - 1 - site) & 1;
                logical |= bit << (d - 1 - l);
            }
            out[logical] += p;
        }
        out
    }
}

/// Compiles a model circuit onto the grid with the given gate set: routing
/// SWAPs and layer gates are synthesized per [`ashn_ir::Basis`] and
/// embedded at their physical sites by `ashn_route`. Error rates are
/// **not** stamped here — use [`stamp_noise`] so one compilation serves
/// several noise levels.
///
/// # Errors
///
/// Propagates [`SynthError`] from basis synthesis (instead of the former
/// `expect` panics).
pub fn compile_model(model: &ModelCircuit, gate_set: GateSet) -> Result<CompiledModel, SynthError> {
    compile_model_on(model, gate_set.basis().as_ref(), None)
}

/// The basis-generic compilation engine behind [`compile_model`] and
/// `ashn::Compiler`: synthesizes per-layer gates and routing SWAPs over
/// `basis`, routes them on `grid` (auto-sized to the model when `None`),
/// and assembles one physical-site circuit.
///
/// # Errors
///
/// Propagates [`SynthError`] from synthesis and assembly.
///
/// # Panics
///
/// Panics when an explicit `grid` is too small for the model (callers
/// validate, e.g. `ashn::Compiler` turns this into a config error).
pub fn compile_model_on(
    model: &ModelCircuit,
    basis: &dyn Basis,
    grid: Option<Grid>,
) -> Result<CompiledModel, SynthError> {
    let grid = grid.unwrap_or_else(|| Grid::for_qubits(model.d));
    let n_sites = grid.len();
    let mut router = Router::new(grid, model.d);
    let mut circuit = Circuit::new(n_sites);
    // The routed SWAP is always the same circuit up to relabeling; compile
    // it once (the SQiSW decomposition in particular is a numerical search).
    let swap = basis.native_swap()?.fuse_single_qubit_runs();
    for layer in &model.layers {
        let pairs: Vec<(usize, usize)> = layer.iter().map(|(p, _)| *p).collect();
        let ops = router.route_layer(&pairs);
        let routed = expand_route_ops(n_sites, &ops, &swap, |index| {
            Ok(basis.synthesize(&layer[index].1)?.fuse_single_qubit_runs())
        })?;
        circuit.append(routed)?;
    }
    let positions = (0..model.d).map(|l| router.position(l)).collect();
    Ok(CompiledModel { circuit, positions })
}

/// Stamps per-gate depolarizing rates from the noise model (single-qubit
/// fixed; two-qubit proportional to duration).
///
/// This deep-clones every gate matrix; the scoring hot path uses
/// [`resolve_rates`] + [`ashn_sim::Simulate::run_noisy_scheduled`] instead,
/// which resolve the same schedule without materializing an annotated copy
/// of the circuit. Kept for callers that want a self-contained noisy
/// circuit (e.g. to hand to the trajectory simulator as-is).
pub fn stamp_noise(circuit: &Circuit, noise: &QvNoise) -> Circuit {
    let mut out = Circuit::new(circuit.n_qubits());
    out.phase = circuit.phase;
    for g in circuit.gates() {
        let rate = noise.rate(g.qubits.len(), g.duration);
        out.push(g.clone().with_error_rate(rate));
    }
    out
}

/// Per-instruction depolarizing rates resolved from the noise model — the
/// noise-resolution half of [`stamp_noise`] without cloning gate matrices.
/// `rates[i]` belongs to instruction `i` of `circuit`.
pub fn resolve_rates(circuit: &Circuit, noise: &QvNoise) -> Vec<f64> {
    circuit
        .gates()
        .iter()
        .map(|g| noise.rate(g.qubits.len(), g.duration))
        .collect()
}

/// Heavy-output set of an ideal distribution: outcomes with probability
/// above the median.
pub fn heavy_set(ideal: &[f64]) -> Vec<usize> {
    let mut sorted = ideal.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    let median = 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
    ideal
        .iter()
        .enumerate()
        .filter(|(_, &p)| p > median)
        .map(|(i, _)| i)
        .collect()
}

/// Result of one circuit evaluation.
#[derive(Clone, Copy, Debug)]
pub struct CircuitScore {
    /// Heavy-output probability under noise.
    pub hop: f64,
    /// Number of native two-qubit gates executed.
    pub two_qubit_gates: usize,
    /// Total two-qubit interaction time (units `1/g`).
    pub interaction_time: f64,
}

/// Scores an already-compiled circuit under a noise level: exact
/// heavy-output probability of the noisy run against the noiseless heavy
/// set, both marginalized onto the logical register.
pub fn score_compiled(compiled: &CompiledModel, noise: &QvNoise) -> CircuitScore {
    score_compiled_many(compiled, std::slice::from_ref(noise))[0]
}

/// Scores an already-compiled circuit at **all** the given noise levels,
/// paying the noise-independent work once: the ideal run executes through
/// a plan-backed [`SimEngine`] and the heavy set is extracted a single
/// time, then each noise point resolves its depolarizing schedule with
/// [`resolve_rates`] (no gate-matrix cloning) and runs the exact
/// density-matrix simulation.
pub fn score_compiled_many(compiled: &CompiledModel, noises: &[QvNoise]) -> Vec<CircuitScore> {
    let circuit = &compiled.circuit;
    let mut engine = SimEngine::new(circuit.n_qubits());
    let ideal = compiled.logical_probs(&engine.run_pure(circuit).probabilities());
    let heavy = heavy_set(&ideal);
    let two_qubit_gates = circuit.two_qubit_gate_count();
    let interaction_time = circuit.total_duration();
    noises
        .iter()
        .map(|noise| {
            let noisy = circuit.run_noisy_scheduled(&resolve_rates(circuit, noise));
            let probs = compiled.logical_probs(&noisy.probabilities());
            CircuitScore {
                hop: heavy.iter().map(|&i| probs[i]).sum(),
                two_qubit_gates,
                interaction_time,
            }
        })
        .collect()
}

/// Compiles and scores one model circuit.
///
/// # Errors
///
/// Propagates [`SynthError`] from compilation.
pub fn score_circuit(
    model: &ModelCircuit,
    gate_set: GateSet,
    noise: &QvNoise,
) -> Result<CircuitScore, SynthError> {
    Ok(score_compiled(&compile_model(model, gate_set)?, noise))
}

/// Samples one model circuit from a dedicated seed and scores it — the unit
/// of work the batched experiment runners fan out.
///
/// # Errors
///
/// Propagates [`SynthError`] from compilation.
pub fn score_sampled(
    d: usize,
    gate_set: GateSet,
    noise: &QvNoise,
    circuit_seed: u64,
) -> Result<CircuitScore, SynthError> {
    Ok(score_sampled_many(d, gate_set, std::slice::from_ref(noise), circuit_seed)?[0])
}

/// [`score_sampled`] at all the given noise levels: the circuit is sampled
/// and compiled **once**, then scored per point via
/// [`score_compiled_many`].
///
/// # Errors
///
/// Propagates [`SynthError`] from compilation.
pub fn score_sampled_many(
    d: usize,
    gate_set: GateSet,
    noises: &[QvNoise],
    circuit_seed: u64,
) -> Result<Vec<CircuitScore>, SynthError> {
    let mut rng = StdRng::seed_from_u64(circuit_seed);
    let model = sample_model_circuit(d, &mut rng);
    Ok(score_compiled_many(
        &compile_model(&model, gate_set)?,
        noises,
    ))
}

/// Folds per-circuit, per-noise-point heavy-output scores into per-point
/// means, propagating the first error.
fn fold_mean_hops(
    scores: Vec<Result<Vec<CircuitScore>, SynthError>>,
    points: usize,
) -> Result<Vec<f64>, SynthError> {
    let n = scores.len();
    let mut totals = vec![0.0; points];
    for s in scores {
        for (t, sc) in totals.iter_mut().zip(s?) {
            *t += sc.hop;
        }
    }
    for t in totals.iter_mut() {
        *t /= n as f64;
    }
    Ok(totals)
}

/// Mean heavy-output probability over `n_circuits` random model circuits of
/// size `d` — one point of paper Fig. 7.
///
/// Per-circuit seeds are drawn serially from `rng`, then each circuit is
/// sampled, compiled, and scored on a [`BatchRunner`] worker: the result
/// depends only on `rng`'s state, never on the machine's parallelism.
///
/// # Errors
///
/// Propagates [`SynthError`] from compilation.
pub fn mean_hop(
    d: usize,
    gate_set: GateSet,
    noise: &QvNoise,
    n_circuits: usize,
    rng: &mut impl Rng,
) -> Result<f64, SynthError> {
    Ok(mean_hop_sweep(d, gate_set, std::slice::from_ref(noise), n_circuits, rng)?[0])
}

/// [`mean_hop`] at all the given noise levels: each circuit is compiled
/// **once** and scored at every point against the same compiled plan —
/// the shape of a Fig. 7 noise sweep, where recompiling per point would
/// multiply the synthesis cost by the number of points.
///
/// # Errors
///
/// Propagates [`SynthError`] from compilation.
pub fn mean_hop_sweep(
    d: usize,
    gate_set: GateSet,
    noises: &[QvNoise],
    n_circuits: usize,
    rng: &mut impl Rng,
) -> Result<Vec<f64>, SynthError> {
    let seeds: Vec<u64> = (0..n_circuits).map(|_| rng.gen::<u64>()).collect();
    let scores = BatchRunner::new(0).run(n_circuits, |i, _| {
        score_sampled_many(d, gate_set, noises, seeds[i])
    });
    fold_mean_hops(scores, noises.len())
}

/// [`mean_hop`] with an explicit master seed and worker count
/// (`workers` follows the [`BatchRunner::with_workers`] zero-means-default
/// convention): circuit `i` is sampled from
/// the [`BatchRunner`] stream for job `i`, so the estimate is bit-identical
/// for any worker count — the reproducibility contract of the batched
/// experiment runner.
///
/// # Errors
///
/// Propagates [`SynthError`] from compilation.
pub fn mean_hop_batched(
    d: usize,
    gate_set: GateSet,
    noise: &QvNoise,
    n_circuits: usize,
    master_seed: u64,
    workers: usize,
) -> Result<f64, SynthError> {
    Ok(mean_hop_batched_sweep(
        d,
        gate_set,
        std::slice::from_ref(noise),
        n_circuits,
        master_seed,
        workers,
    )?[0])
}

/// [`mean_hop_batched`] at all the given noise levels, compiling each
/// circuit once (same worker-count-invariance contract).
///
/// # Errors
///
/// Propagates [`SynthError`] from compilation.
pub fn mean_hop_batched_sweep(
    d: usize,
    gate_set: GateSet,
    noises: &[QvNoise],
    n_circuits: usize,
    master_seed: u64,
    workers: usize,
) -> Result<Vec<f64>, SynthError> {
    let runner = BatchRunner::new(master_seed).with_workers(workers);
    let scores = runner.run(n_circuits, |_, rng| {
        let model = sample_model_circuit(d, rng);
        Ok(score_compiled_many(
            &compile_model(&model, gate_set)?,
            noises,
        ))
    });
    fold_mean_hops(scores, noises.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn heavy_set_is_half_the_outcomes_generically() {
        let ideal = [0.4, 0.1, 0.3, 0.2];
        let h = heavy_set(&ideal);
        assert_eq!(h, vec![0, 2]);
    }

    #[test]
    fn noiseless_hop_is_high() {
        // Ideal heavy-output probability of random circuits approaches
        // (1 + ln 2)/2 ≈ 0.847 for large d; even at d = 4 it is well above
        // the 2/3 threshold.
        let mut rng = StdRng::seed_from_u64(31);
        let noise = QvNoise {
            e_cz: 0.0,
            e_1q: 0.0,
        };
        let hop = mean_hop(4, GateSet::Ashn { cutoff: 0.0 }, &noise, 4, &mut rng).unwrap();
        assert!(hop > 0.75, "noiseless HOP = {hop}");
    }

    #[test]
    fn noise_lowers_hop_toward_half() {
        let mut rng = StdRng::seed_from_u64(32);
        let model = sample_model_circuit(4, &mut rng);
        let clean = score_circuit(
            &model,
            GateSet::Ashn { cutoff: 0.0 },
            &QvNoise {
                e_cz: 0.0,
                e_1q: 0.0,
            },
        )
        .unwrap();
        let noisy = score_circuit(
            &model,
            GateSet::Ashn { cutoff: 0.0 },
            &QvNoise::with_e_cz(0.05),
        )
        .unwrap();
        assert!(noisy.hop < clean.hop);
        assert!(
            noisy.hop > 0.45,
            "HOP should stay above ~0.5, got {}",
            noisy.hop
        );
    }

    #[test]
    fn ashn_beats_cz_on_the_same_circuits() {
        // The paper's headline Fig. 7 ordering at a fixed noise level.
        let noise = QvNoise::with_e_cz(0.017);
        let mut hops = [0.0f64; 2];
        for (k, gs) in [GateSet::Cz, GateSet::Ashn { cutoff: 0.0 }]
            .into_iter()
            .enumerate()
        {
            let mut rng = StdRng::seed_from_u64(33); // same circuits for both
            hops[k] = mean_hop(4, gs, &noise, 3, &mut rng).unwrap();
        }
        assert!(
            hops[1] > hops[0],
            "AshN {} should beat CZ {}",
            hops[1],
            hops[0]
        );
    }

    #[test]
    fn batched_hop_is_worker_count_invariant() {
        // The same master seed must yield bit-identical heavy-output
        // statistics whether the batch runs on 1, 2, or 8 workers.
        let noise = QvNoise::with_e_cz(0.012);
        let reference = mean_hop_batched(3, GateSet::Cz, &noise, 4, 77, 1).unwrap();
        for workers in [2, 8] {
            let got = mean_hop_batched(3, GateSet::Cz, &noise, 4, 77, workers).unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "workers = {workers}");
        }
        assert!((0.0..=1.0).contains(&reference));
    }

    #[test]
    fn sweep_matches_per_point_scoring_bit_for_bit() {
        // One compilation scored at three noise levels must equal three
        // independent batched runs from the same master seed.
        let points = [
            QvNoise::with_e_cz(0.007),
            QvNoise::with_e_cz(0.012),
            QvNoise::with_e_cz(0.017),
        ];
        let swept = mean_hop_batched_sweep(3, GateSet::Cz, &points, 3, 41, 2).unwrap();
        assert_eq!(swept.len(), points.len());
        for (noise, &hop) in points.iter().zip(swept.iter()) {
            let single = mean_hop_batched(3, GateSet::Cz, noise, 3, 41, 2).unwrap();
            assert_eq!(hop.to_bits(), single.to_bits());
        }
        // More noise, less heavy output.
        assert!(swept[0] > swept[2]);
    }

    #[test]
    fn sweep_is_worker_count_invariant() {
        let points = [QvNoise::with_e_cz(0.007), QvNoise::with_e_cz(0.017)];
        let reference = mean_hop_batched_sweep(3, GateSet::Cz, &points, 4, 43, 1).unwrap();
        for workers in [2, 8] {
            let got = mean_hop_batched_sweep(3, GateSet::Cz, &points, 4, 43, workers).unwrap();
            for (a, b) in got.iter().zip(reference.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers = {workers}");
            }
        }
    }

    #[test]
    fn resolve_rates_matches_stamp_noise() {
        let mut rng = StdRng::seed_from_u64(35);
        let model = sample_model_circuit(3, &mut rng);
        let compiled = compile_model(&model, GateSet::Cz).unwrap();
        let noise = QvNoise::with_e_cz(0.013);
        let rates = resolve_rates(&compiled.circuit, &noise);
        let stamped = stamp_noise(&compiled.circuit, &noise);
        assert_eq!(rates.len(), stamped.gates().len());
        for (r, g) in rates.iter().zip(stamped.gates()) {
            assert_eq!(Some(*r), g.error_rate);
        }
    }

    #[test]
    fn mean_hop_depends_only_on_the_caller_rng() {
        // Two calls from identically seeded RNGs agree exactly, whatever
        // the default worker count happens to be on this machine.
        let noise = QvNoise::with_e_cz(0.012);
        let mut rng_a = StdRng::seed_from_u64(55);
        let mut rng_b = StdRng::seed_from_u64(55);
        let a = mean_hop(3, GateSet::Cz, &noise, 3, &mut rng_a).unwrap();
        let b = mean_hop(3, GateSet::Cz, &noise, 3, &mut rng_b).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn interaction_time_orders_cz_sqisw_ashn() {
        let mut rng = StdRng::seed_from_u64(34);
        let model = sample_model_circuit(4, &mut rng);
        let noise = QvNoise::with_e_cz(0.01);
        let t_cz = score_circuit(&model, GateSet::Cz, &noise)
            .unwrap()
            .interaction_time;
        let t_sq = score_circuit(&model, GateSet::Sqisw, &noise)
            .unwrap()
            .interaction_time;
        let t_ashn = score_circuit(&model, GateSet::Ashn { cutoff: 0.0 }, &noise)
            .unwrap()
            .interaction_time;
        assert!(t_ashn < t_sq && t_sq < t_cz, "{t_ashn} {t_sq} {t_cz}");
    }
}
