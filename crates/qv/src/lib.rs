//! # ashn-qv
//!
//! Quantum-volume experiments (paper §6.3, Fig. 7): square random circuits
//! compiled onto a 2-D grid with SWAP routing, executed under
//! gate-time-proportional depolarizing noise for three native gate sets —
//! flux-tuned CZ, flux-tuned SQiSW, and AshN — and scored by the exact
//! heavy-output probability.
//!
//! ```no_run
//! use ashn_qv::{GateSet, QvNoise, mean_hop};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let hop = mean_hop(4, GateSet::Ashn { cutoff: 1.1 }, &QvNoise::with_e_cz(0.007), 20, &mut rng)?;
//! assert!(hop > 0.5);
//! # Ok::<(), ashn_ir::SynthError>(())
//! ```

pub mod experiment;
pub mod gateset;
pub mod protocol;

pub use experiment::{
    compile_model, compile_model_on, heavy_set, mean_hop, mean_hop_batched, mean_hop_batched_sweep,
    mean_hop_sweep, resolve_rates, sample_model_circuit, score_circuit, score_compiled,
    score_compiled_many, score_sampled, score_sampled_many, stamp_noise, CircuitScore,
    CompiledModel, ModelCircuit, QvNoise,
};
pub use gateset::GateSet;
