//! # ashn-opt
//!
//! A DAG-based circuit optimizer that rewrites arbitrary circuits down to
//! minimal native form — the compiler-side realization of the paper's
//! claim that the AshN scheme subsumes the whole two-qubit gate zoo: if
//! *any* two-qubit block is one native gate, an optimizer should be
//! collecting blocks and re-emitting them as single gates.
//!
//! * [`DagCircuit`] — per-wire dependency edges over `ashn_ir::Circuit`,
//!   with commutation queries (via `ashn_ir::classify`) and a lossless
//!   round trip back to the linear IR.
//! * [`Pass`]/[`PassManager`] — fixed-point pass pipelines with per-pass
//!   gate-count/depth accounting ([`PassStats`], [`OptStats`]).
//! * [`passes`] — adjacent single-qubit merge, global-phase folding,
//!   commutation-aware cancellation, and the headline
//!   [`passes::Resynthesize`]: maximal two-qubit runs gathered into one
//!   `SU(4)` target and re-emitted through any [`ashn_ir::Basis`]
//!   (KAK-canonicalized internally; nearly free for repeated Weyl classes
//!   when the basis is wrapped in `ashn_synth::cache::CachedBasis`).
//!
//! The facade (`ashn::Compiler::opt_level`) runs these passes between
//! routing and scheduling; the soundness contract — optimized circuits are
//! unitary-equivalent to their input with the global phase folded — is
//! enforced by the property suite in `crates/opt/tests`.
//!
//! ## Example
//!
//! ```
//! use ashn_ir::{Basis, Circuit};
//! use ashn_math::randmat::haar_unitary;
//! use ashn_opt::{standard_pipeline, PassManager};
//! use ashn_synth::basis::CzBasis;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Two CZ-compiled gates on the same pair: 6 CZs that fuse to 3.
//! let mut rng = StdRng::seed_from_u64(5);
//! let mut circuit = Circuit::new(2);
//! for _ in 0..2 {
//!     let u = haar_unitary(4, &mut rng);
//!     circuit.append(CzBasis.synthesize(&u)?.fuse_single_qubit_runs())?;
//! }
//! let (optimized, stats) = standard_pipeline(CzBasis, 1e-6).run(&circuit)?;
//! assert_eq!(optimized.entangler_count(), 3);
//! assert_eq!(stats.before.two_qubit, 6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod dag;
pub mod error;
pub mod pass;
pub mod passes;

pub use dag::{DagCircuit, NodeId};
pub use error::OptError;
pub use pass::{OptStats, Pass, PassManager, PassStats, Snapshot};
pub use passes::{CommuteCancel, Merge1q, PhaseFold, Resynthesize, Retarget};

use ashn_ir::Basis;

/// The structural (exact-rewrite) pipeline: adjacent single-qubit merge,
/// global-phase folding, and commutation-aware cancellation. Perturbs the
/// circuit unitary only at near-machine precision
/// ([`passes::EXACT_TOL`]).
pub fn structural_pipeline<'p>() -> PassManager<'p> {
    PassManager::new()
        .with_pass(Merge1q::default())
        .with_pass(PhaseFold::default())
        .with_pass(CommuteCancel::default())
}

/// The full standard pipeline: the structural passes, closed-form
/// [`Retarget`]ing onto `basis` (exact rule rewrites of recognized
/// foreign gates — CX, CZ, ECR, SWAP, iSWAP, SQiSW), and finally
/// [`Resynthesize`] over `basis` for the blocks the rules do not cover,
/// accepting block replacements within `accept_tol` (Frobenius) of the
/// block unitary.
pub fn standard_pipeline<'p, B: Basis + 'p>(basis: B, accept_tol: f64) -> PassManager<'p> {
    let retarget = Retarget::new(&basis);
    structural_pipeline()
        .with_pass(retarget)
        .with_pass(Resynthesize::new(basis, accept_tol))
}
