//! A dependency-DAG view over the linear [`ashn_ir::Circuit`] IR.
//!
//! Each instruction becomes a node; for every wire it touches, the node is
//! linked to the previous and next instruction on that wire. That is the
//! full dependency structure of a quantum circuit (two gates must keep
//! their relative order iff they share a wire), so optimization passes can
//! remove, rewrite, and splice gates in `O(1)` per link without re-scanning
//! the instruction list.
//!
//! The round trip is lossless: [`DagCircuit::into_circuit`] emits nodes in
//! topological order with the *lowest creation index first* among ready
//! nodes. Node indices are assigned in instruction order, and the original
//! order is itself topological, so a DAG that no pass touched emits the
//! exact instruction sequence it was built from — bit-identical matrices,
//! labels, durations, and annotations (pinned by the round-trip suite in
//! `crates/opt/tests`).

use crate::error::OptError;
use ashn_ir::{Circuit, Instruction, IrError};
use ashn_math::Complex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Index of a node in a [`DagCircuit`]. Stable across removals (slots are
/// never reused); new nodes always get larger ids.
pub type NodeId = usize;

/// Per-wire links of one node (parallel to the instruction's qubit list).
#[derive(Clone, Copy, Debug, Default)]
struct WireLink {
    prev: Option<NodeId>,
    next: Option<NodeId>,
}

/// The DAG view of a circuit: a register size, a global phase, and
/// per-wire doubly linked chains of instructions.
#[derive(Clone, Debug)]
pub struct DagCircuit {
    n: usize,
    phase: Complex,
    /// Slot-per-node storage; `None` marks a removed node.
    nodes: Vec<Option<Instruction>>,
    /// `links[id][k]` = neighbors of node `id` on wire `qubits[k]`.
    links: Vec<Vec<WireLink>>,
    head: Vec<Option<NodeId>>,
    tail: Vec<Option<NodeId>>,
    live: usize,
}

impl DagCircuit {
    /// An empty DAG on `n` wires with unit phase.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            phase: Complex::ONE,
            nodes: Vec::new(),
            links: Vec::new(),
            head: vec![None; n],
            tail: vec![None; n],
            live: 0,
        }
    }

    /// Builds the DAG view of a circuit.
    ///
    /// # Errors
    ///
    /// [`OptError::Ir`] ([`IrError::QubitOutOfRange`] /
    /// [`IrError::RepeatedQubit`]) when an instruction references a wire
    /// `>= n` or lists a wire twice — hand-assembled circuits can violate
    /// the invariants [`Circuit::push`] maintains, and the optimizer must
    /// reject them with a structured error rather than corrupt its links.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, OptError> {
        let mut dag = Self::new(circuit.n);
        dag.phase = circuit.phase;
        for g in &circuit.instructions {
            dag.push_back(g.clone())?;
        }
        Ok(dag)
    }

    /// Register size.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Global phase.
    pub fn phase(&self) -> Complex {
        self.phase
    }

    /// Multiplies the global phase (used when a pass folds a scalar gate
    /// away).
    pub fn mul_phase(&mut self, c: Complex) {
        self.phase *= c;
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live nodes remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total node slots ever allocated (live + removed); valid ids are
    /// `0..capacity()`.
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when `id` names a live node.
    pub fn is_live(&self, id: NodeId) -> bool {
        self.nodes.get(id).is_some_and(|s| s.is_some())
    }

    /// The instruction at `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not live.
    pub fn instruction(&self, id: NodeId) -> &Instruction {
        self.nodes[id].as_ref().expect("live node")
    }

    /// Live node ids in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).filter(|&id| self.is_live(id))
    }

    /// First live node on `wire`.
    pub fn wire_head(&self, wire: usize) -> Option<NodeId> {
        self.head[wire]
    }

    /// Last live node on `wire`.
    pub fn wire_tail(&self, wire: usize) -> Option<NodeId> {
        self.tail[wire]
    }

    fn slot_of(&self, id: NodeId, wire: usize) -> usize {
        self.instruction(id)
            .qubits
            .iter()
            .position(|&q| q == wire)
            .expect("node is linked on this wire")
    }

    /// The node preceding `id` on `wire` (`None` at the wire head).
    ///
    /// # Panics
    ///
    /// Panics when `id` is not live or does not touch `wire`.
    pub fn pred(&self, id: NodeId, wire: usize) -> Option<NodeId> {
        self.links[id][self.slot_of(id, wire)].prev
    }

    /// The node following `id` on `wire` (`None` at the wire tail).
    ///
    /// # Panics
    ///
    /// Panics when `id` is not live or does not touch `wire`.
    pub fn succ(&self, id: NodeId, wire: usize) -> Option<NodeId> {
        self.links[id][self.slot_of(id, wire)].next
    }

    fn validate(&self, g: &Instruction) -> Result<(), OptError> {
        for (i, &q) in g.qubits.iter().enumerate() {
            if q >= self.n {
                return Err(IrError::QubitOutOfRange {
                    qubit: q,
                    n: self.n,
                }
                .into());
            }
            if g.qubits[i + 1..].contains(&q) {
                return Err(IrError::RepeatedQubit { qubit: q }.into());
            }
        }
        Ok(())
    }

    /// Appends an instruction at the end of all its wires.
    ///
    /// # Errors
    ///
    /// [`OptError::Ir`] on out-of-range or repeated wires.
    pub fn push_back(&mut self, g: Instruction) -> Result<NodeId, OptError> {
        self.validate(&g)?;
        let id = self.nodes.len();
        let mut links = vec![WireLink::default(); g.qubits.len()];
        for (k, &q) in g.qubits.iter().enumerate() {
            links[k].prev = self.tail[q];
            match self.tail[q] {
                Some(t) => {
                    let slot = self.slot_of(t, q);
                    self.links[t][slot].next = Some(id);
                }
                None => self.head[q] = Some(id),
            }
            self.tail[q] = Some(id);
        }
        self.nodes.push(Some(g));
        self.links.push(links);
        self.live += 1;
        Ok(id)
    }

    /// Inserts an instruction immediately before the per-wire anchors:
    /// `anchors[k]` is the node the new instruction must precede on wire
    /// `g.qubits[k]` (`None` appends at that wire's tail). Anchor nodes
    /// must be live and touch the corresponding wire.
    ///
    /// # Errors
    ///
    /// [`OptError::Ir`] on out-of-range/repeated wires;
    /// [`OptError::InvalidAnchor`] when an anchor is not a live node on its
    /// wire (e.g. a stale id from before a removal).
    pub fn insert_before(
        &mut self,
        g: Instruction,
        anchors: &[Option<NodeId>],
    ) -> Result<NodeId, OptError> {
        self.validate(&g)?;
        assert_eq!(anchors.len(), g.qubits.len(), "one anchor per wire");
        for (k, &q) in g.qubits.iter().enumerate() {
            if let Some(a) = anchors[k] {
                if !self.is_live(a) || !self.instruction(a).qubits.contains(&q) {
                    return Err(OptError::InvalidAnchor { node: a, wire: q });
                }
            }
        }
        let id = self.nodes.len();
        let mut links = vec![WireLink::default(); g.qubits.len()];
        self.nodes.push(Some(g));
        self.links.push(links.clone());
        let qubits = self.instruction(id).qubits.clone();
        for (k, &q) in qubits.iter().enumerate() {
            match anchors[k] {
                Some(a) => {
                    let aslot = self.slot_of(a, q);
                    let prev = self.links[a][aslot].prev;
                    links[k] = WireLink {
                        prev,
                        next: Some(a),
                    };
                    self.links[a][aslot].prev = Some(id);
                    match prev {
                        Some(p) => {
                            let pslot = self.slot_of(p, q);
                            self.links[p][pslot].next = Some(id);
                        }
                        None => self.head[q] = Some(id),
                    }
                }
                None => {
                    links[k].prev = self.tail[q];
                    match self.tail[q] {
                        Some(t) => {
                            let slot = self.slot_of(t, q);
                            self.links[t][slot].next = Some(id);
                        }
                        None => self.head[q] = Some(id),
                    }
                    self.tail[q] = Some(id);
                }
            }
        }
        self.links[id] = links;
        self.live += 1;
        Ok(id)
    }

    /// Removes a node, splicing its wire chains, and returns its
    /// instruction.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not live.
    pub fn remove(&mut self, id: NodeId) -> Instruction {
        let g = self.nodes[id].clone().expect("live node");
        for (k, &q) in g.qubits.iter().enumerate() {
            let WireLink { prev, next } = self.links[id][k];
            match prev {
                Some(p) => {
                    let slot = self.slot_of(p, q);
                    self.links[p][slot].next = next;
                }
                None => self.head[q] = next,
            }
            match next {
                Some(s) => {
                    let slot = self.slot_of(s, q);
                    self.links[s][slot].prev = prev;
                }
                None => self.tail[q] = prev,
            }
        }
        self.nodes[id] = None;
        self.live -= 1;
        g
    }

    /// Replaces the instruction at `id` in place. The replacement must act
    /// on exactly the same wires in the same order (the links stay valid);
    /// use [`DagCircuit::remove`] + [`DagCircuit::insert_before`] to change
    /// wires.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not live or the wire lists differ.
    pub fn replace_gate(&mut self, id: NodeId, g: Instruction) {
        assert_eq!(
            self.instruction(id).qubits,
            g.qubits,
            "replacement must keep the wire list"
        );
        self.nodes[id] = Some(g);
    }

    /// Live instructions acting on two or more wires.
    pub fn two_qubit_count(&self) -> usize {
        self.node_ids()
            .filter(|&id| self.instruction(id).is_entangler())
            .count()
    }

    /// Circuit depth: length of the longest wire-dependency chain (every
    /// instruction counts one layer on each of its wires).
    pub fn depth(&self) -> usize {
        let order = self.topo_order();
        let mut d = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for &id in &order {
            let mut best = 0;
            for (k, _) in self.instruction(id).qubits.iter().enumerate() {
                if let Some(p) = self.links[id][k].prev {
                    best = best.max(d[p]);
                }
            }
            d[id] = best + 1;
            max = max.max(d[id]);
        }
        max
    }

    /// Live node ids in the canonical topological order (lowest id first
    /// among ready nodes). For a freshly built DAG this is exactly the
    /// source instruction order.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut indeg = vec![0usize; self.nodes.len()];
        let mut heap: BinaryHeap<Reverse<NodeId>> = BinaryHeap::new();
        for id in self.node_ids() {
            indeg[id] = self.links[id].iter().filter(|l| l.prev.is_some()).count();
            if indeg[id] == 0 {
                heap.push(Reverse(id));
            }
        }
        let mut out = Vec::with_capacity(self.live);
        while let Some(Reverse(id)) = heap.pop() {
            out.push(id);
            for link in &self.links[id] {
                if let Some(nx) = link.next {
                    indeg[nx] -= 1;
                    if indeg[nx] == 0 {
                        heap.push(Reverse(nx));
                    }
                }
            }
        }
        debug_assert_eq!(out.len(), self.live, "wire chains form a DAG");
        out
    }

    /// Emits the circuit in canonical topological order, consuming the DAG
    /// (no instruction clones).
    pub fn into_circuit(mut self) -> Circuit {
        let order = self.topo_order();
        let mut out = Circuit::new(self.n);
        out.phase = self.phase;
        out.instructions = order
            .into_iter()
            .map(|id| self.nodes[id].take().expect("live node"))
            .collect();
        out
    }

    /// Emits the circuit in canonical topological order, cloning the
    /// instructions (the DAG stays usable).
    pub fn to_circuit(&self) -> Circuit {
        let mut out = Circuit::new(self.n);
        out.phase = self.phase;
        out.instructions = self
            .topo_order()
            .into_iter()
            .map(|id| self.instruction(id).clone())
            .collect();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::CMat;

    fn x_gate() -> CMat {
        CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]])
    }

    fn cz_gate() -> CMat {
        CMat::from_rows_f64(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0, -1.0],
        ])
    }

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.phase = Complex::cis(0.3);
        c.push(Instruction::new(vec![0], x_gate(), "X0"));
        c.push(Instruction::new(vec![0, 1], cz_gate(), "CZ01").with_duration(1.0));
        c.push(Instruction::new(vec![2], x_gate(), "X2"));
        c.push(Instruction::new(vec![1, 2], cz_gate(), "CZ12").with_duration(1.0));
        c.push(Instruction::new(vec![0], x_gate(), "X0b"));
        c
    }

    #[test]
    fn links_expose_wire_chains() {
        let dag = DagCircuit::from_circuit(&sample()).unwrap();
        assert_eq!(dag.len(), 5);
        assert_eq!(dag.wire_head(0), Some(0));
        assert_eq!(dag.succ(0, 0), Some(1));
        assert_eq!(dag.succ(1, 0), Some(4));
        assert_eq!(dag.succ(1, 1), Some(3));
        assert_eq!(dag.pred(3, 2), Some(2));
        assert_eq!(dag.wire_tail(0), Some(4));
        assert_eq!(dag.two_qubit_count(), 2);
        assert_eq!(dag.depth(), 3);
    }

    #[test]
    fn untouched_round_trip_preserves_order() {
        let c = sample();
        let back = DagCircuit::from_circuit(&c).unwrap().into_circuit();
        assert_eq!(back.instructions.len(), c.instructions.len());
        for (a, b) in back.instructions.iter().zip(&c.instructions) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.qubits, b.qubits);
        }
        assert_eq!(back.phase, c.phase);
    }

    #[test]
    fn remove_splices_chains() {
        let mut dag = DagCircuit::from_circuit(&sample()).unwrap();
        dag.remove(1); // CZ01
        assert_eq!(dag.succ(0, 0), Some(4));
        assert_eq!(dag.pred(4, 0), Some(0));
        assert_eq!(dag.wire_head(1), Some(3));
        assert_eq!(dag.len(), 4);
        let order = dag.topo_order();
        assert_eq!(order, vec![0, 2, 3, 4]);
    }

    #[test]
    fn insert_before_anchors_and_tail() {
        let mut dag = DagCircuit::from_circuit(&sample()).unwrap();
        // Insert a 2q gate on (0,1) before CZ01 on wire 0 and before CZ12
        // on wire 1 — i.e. after X0 and before both entanglers.
        let id = dag
            .insert_before(
                Instruction::new(vec![0, 1], cz_gate(), "NEW"),
                &[Some(1), Some(1)],
            )
            .unwrap();
        assert_eq!(dag.succ(0, 0), Some(id));
        assert_eq!(dag.succ(id, 0), Some(1));
        assert_eq!(dag.pred(1, 1), Some(id));
        // Tail append.
        let t = dag
            .insert_before(Instruction::new(vec![2], x_gate(), "TAIL"), &[None])
            .unwrap();
        assert_eq!(dag.wire_tail(2), Some(t));
        let labels: Vec<_> = dag
            .into_circuit()
            .instructions
            .iter()
            .map(|g| g.label.clone())
            .collect();
        // Min-id tie-breaking emits the older X2 (id 2) before the freshly
        // created NEW node; the order is still topological — NEW precedes
        // CZ01 and CZ12 on its wires.
        assert_eq!(
            labels,
            vec!["X0", "X2", "NEW", "CZ01", "CZ12", "X0b", "TAIL"]
        );
    }

    #[test]
    fn from_circuit_rejects_out_of_range_wires() {
        // Hand-assembled circuit violating the register bound.
        let mut c = Circuit::new(2);
        c.instructions
            .push(Instruction::new(vec![5], x_gate(), "bad"));
        match DagCircuit::from_circuit(&c) {
            Err(OptError::Ir(IrError::QubitOutOfRange { qubit: 5, n: 2 })) => {}
            other => panic!("expected QubitOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn insert_before_rejects_stale_or_off_wire_anchors() {
        let mut dag = DagCircuit::from_circuit(&sample()).unwrap();
        // Anchor on a wire it does not touch (node 0 = X0 is on wire 0).
        let err = dag
            .insert_before(Instruction::new(vec![2], x_gate(), "bad"), &[Some(0)])
            .unwrap_err();
        assert!(matches!(err, OptError::InvalidAnchor { node: 0, wire: 2 }));
        // Stale anchor: a removed node id.
        dag.remove(2);
        let err = dag
            .insert_before(Instruction::new(vec![2], x_gate(), "bad"), &[Some(2)])
            .unwrap_err();
        assert!(matches!(err, OptError::InvalidAnchor { node: 2, wire: 2 }));
    }

    #[test]
    fn replace_gate_keeps_links() {
        let mut dag = DagCircuit::from_circuit(&sample()).unwrap();
        dag.replace_gate(0, Instruction::new(vec![0], x_gate(), "X0'"));
        assert_eq!(dag.instruction(0).label, "X0'");
        assert_eq!(dag.succ(0, 0), Some(1));
    }
}
