//! Optimizer error type.

use ashn_ir::{IrError, SynthError};
use std::error::Error;
use std::fmt;

/// Failures building the DAG view or running optimization passes.
#[derive(Clone, Debug)]
pub enum OptError {
    /// A structural IR error (malformed instruction, out-of-range wire).
    Ir(IrError),
    /// Basis synthesis failed during block resynthesis.
    Synth(SynthError),
    /// A splice anchor passed to `DagCircuit::insert_before` is not a live
    /// node on the required wire (typically a stale id from before a
    /// removal).
    InvalidAnchor {
        /// The anchor node id.
        node: usize,
        /// The wire the anchor was required to touch.
        wire: usize,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Ir(e) => write!(f, "ir error during optimization: {e}"),
            OptError::Synth(e) => write!(f, "synthesis error during optimization: {e}"),
            OptError::InvalidAnchor { node, wire } => {
                write!(f, "splice anchor {node} is not a live node on wire {wire}")
            }
        }
    }
}

impl Error for OptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OptError::Ir(e) => Some(e),
            OptError::Synth(e) => Some(e),
            OptError::InvalidAnchor { .. } => None,
        }
    }
}

impl From<IrError> for OptError {
    fn from(e: IrError) -> Self {
        OptError::Ir(e)
    }
}

impl From<SynthError> for OptError {
    fn from(e: SynthError) -> Self {
        OptError::Synth(e)
    }
}
