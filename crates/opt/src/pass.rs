//! The [`Pass`] abstraction and the fixed-point [`PassManager`].

use crate::dag::DagCircuit;
use crate::error::OptError;
use ashn_ir::Circuit;
use std::fmt;

/// One rewrite over the DAG. A pass mutates the DAG in place and reports
/// whether it changed anything; the manager iterates the pass list until a
/// full sweep runs clean (or the iteration cap is hit).
pub trait Pass {
    /// Display name (shows up in [`PassStats`]).
    fn name(&self) -> String;

    /// Runs the pass once over the DAG. Returns `true` when the DAG was
    /// modified.
    ///
    /// # Errors
    ///
    /// [`OptError`] on structural failures; recoverable per-block synthesis
    /// failures should be skipped, not propagated.
    fn run(&self, dag: &mut DagCircuit) -> Result<bool, OptError>;
}

/// Gate-count/depth snapshot of a DAG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Total live instructions.
    pub gates: usize,
    /// Instructions acting on ≥ 2 wires.
    pub two_qubit: usize,
    /// Longest wire-dependency chain.
    pub depth: usize,
}

impl Snapshot {
    /// Snapshot of the DAG's current shape.
    pub fn of(dag: &DagCircuit) -> Self {
        Self {
            gates: dag.len(),
            two_qubit: dag.two_qubit_count(),
            depth: dag.depth(),
        }
    }
}

/// Per-pass accounting: how often the pass ran, how often it fired, and
/// the circuit shape before its first and after its last execution.
#[derive(Clone, Debug)]
pub struct PassStats {
    /// Pass display name.
    pub pass: String,
    /// Times the pass executed across all fixed-point sweeps.
    pub runs: usize,
    /// Executions that modified the DAG.
    pub fired: usize,
    /// Shape before the first execution.
    pub before: Snapshot,
    /// Shape after the last execution.
    pub after: Snapshot,
}

/// Whole-run accounting returned by [`PassManager::run`].
#[derive(Clone, Debug)]
pub struct OptStats {
    /// Fixed-point sweeps executed (the last one ran clean unless the
    /// iteration cap was hit).
    pub iterations: usize,
    /// Shape of the input circuit.
    pub before: Snapshot,
    /// Shape of the optimized circuit.
    pub after: Snapshot,
    /// Per-pass breakdown, in pipeline order.
    pub passes: Vec<PassStats>,
}

impl OptStats {
    /// Instructions eliminated.
    pub fn gates_removed(&self) -> usize {
        self.before.gates.saturating_sub(self.after.gates)
    }

    /// Two-qubit gates eliminated.
    pub fn two_qubit_removed(&self) -> usize {
        self.before.two_qubit.saturating_sub(self.after.two_qubit)
    }

    /// Depth layers eliminated.
    pub fn depth_removed(&self) -> usize {
        self.before.depth.saturating_sub(self.after.depth)
    }
}

impl fmt::Display for OptStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gates {}→{}, 2q {}→{}, depth {}→{} in {} sweep(s)",
            self.before.gates,
            self.after.gates,
            self.before.two_qubit,
            self.after.two_qubit,
            self.before.depth,
            self.after.depth,
            self.iterations
        )
    }
}

/// Runs a pass pipeline to a fixed point.
///
/// Passes execute in insertion order; the whole list repeats until one full
/// sweep changes nothing, capped at [`PassManager::with_max_iterations`]
/// (default 8 — every built-in pass only ever shrinks the gate count, so
/// the cap exists for pathological user passes, not normal operation).
///
/// The lifetime parameter lets passes borrow their configuration (e.g. the
/// resynthesis pass borrowing the compiler's cached [`ashn_ir::Basis`]).
pub struct PassManager<'p> {
    passes: Vec<Box<dyn Pass + 'p>>,
    max_iterations: usize,
}

impl<'p> Default for PassManager<'p> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'p> PassManager<'p> {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self {
            passes: Vec::new(),
            max_iterations: 8,
        }
    }

    /// Appends a pass (builder style).
    #[must_use]
    pub fn with_pass(mut self, pass: impl Pass + 'p) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Caps the number of fixed-point sweeps.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    #[must_use]
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one sweep is required");
        self.max_iterations = n;
        self
    }

    /// Names of the registered passes, in execution order.
    pub fn pass_names(&self) -> Vec<String> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Optimizes a linear circuit: DAG conversion, fixed-point pass
    /// iteration, canonical re-linearization.
    ///
    /// # Errors
    ///
    /// [`OptError`] from DAG construction (malformed circuit) or a pass.
    pub fn run(&self, circuit: &Circuit) -> Result<(Circuit, OptStats), OptError> {
        let mut dag = DagCircuit::from_circuit(circuit)?;
        let stats = self.run_dag(&mut dag)?;
        Ok((dag.into_circuit(), stats))
    }

    /// Optimizes an existing DAG in place.
    ///
    /// # Errors
    ///
    /// Propagates the first pass error.
    pub fn run_dag(&self, dag: &mut DagCircuit) -> Result<OptStats, OptError> {
        let telemetry = ashn_telemetry::current();
        let _span = telemetry.span("opt.run");
        // Per-pass histogram handles are resolved once per `run_dag`, so
        // the fixed-point loop pays one atomic record per pass sweep.
        let pass_timers: Vec<_> = self
            .passes
            .iter()
            .map(|p| telemetry.histogram(&format!("opt.pass.{}", p.name())))
            .collect();
        let before = Snapshot::of(dag);
        let mut per_pass: Vec<Option<PassStats>> = vec![None; self.passes.len()];
        let mut iterations = 0;
        // Snapshots cost a topological sort (depth); the DAG is untouched
        // between one pass's after-measurement and the next pass's start,
        // so the previous snapshot carries forward instead of recomputing.
        let mut current = before;
        for _ in 0..self.max_iterations {
            iterations += 1;
            let mut changed = false;
            for (i, pass) in self.passes.iter().enumerate() {
                let snap_before = current;
                let started = std::time::Instant::now();
                let fired = pass.run(dag)?;
                pass_timers[i].record(started.elapsed());
                let snap_after = if fired {
                    Snapshot::of(dag)
                } else {
                    snap_before
                };
                current = snap_after;
                let entry = per_pass[i].get_or_insert_with(|| PassStats {
                    pass: pass.name(),
                    runs: 0,
                    fired: 0,
                    before: snap_before,
                    after: snap_after,
                });
                entry.runs += 1;
                entry.fired += usize::from(fired);
                entry.after = snap_after;
                changed |= fired;
            }
            if !changed {
                break;
            }
        }
        Ok(OptStats {
            iterations,
            before,
            after: current,
            passes: per_pass.into_iter().flatten().collect(),
        })
    }
}
