//! Retarget: closed-form instruction-set rewriting ahead of numeric
//! resynthesis.

use crate::dag::{DagCircuit, NodeId};
use crate::error::OptError;
use crate::pass::Pass;
use ashn_ir::{Basis, Circuit, Instruction};
use ashn_synth::retarget::RuleSet;
use std::sync::Arc;

/// Rewrites recognized foreign gates (CX, CZ, ECR, SWAP, iSWAP, SQiSW and
/// their wire reversals) into exact fragments over the target gate set
/// using the closed-form rule table — no numeric synthesis, no KAK, no
/// acceptance tolerance: every emitted fragment realizes its gate to
/// machine precision by construction.
///
/// Run ahead of [`Resynthesize`](crate::Resynthesize): retargeting
/// handles the (dominant, in ported circuits) named-gate traffic for
/// free, and resynthesis then pays its Collect2q + KAK machinery only on
/// the blocks the rules do not cover. Gates already native to the target
/// set are left untouched, and rule fragments contain only target-native
/// entanglers, so the pass is idempotent — a second sweep is a no-op,
/// which is what lets it run inside a fixed-point
/// [`PassManager`](crate::PassManager).
///
/// An optional source filter ([`Retarget::source`]) restricts rewriting
/// to gates native to one registered source set — the "port this CX/CZ
/// circuit onto that machine" shape — leaving any other recognized gates
/// for downstream passes to judge.
#[derive(Clone, Debug)]
pub struct Retarget {
    rules: Arc<RuleSet>,
    target_name: String,
    target_params: String,
    source: Option<(String, String)>,
}

impl Retarget {
    /// A retargeting pass emitting fragments native to `target`, armed
    /// with the standard rule table.
    pub fn new(target: &(impl Basis + ?Sized)) -> Self {
        Self {
            rules: ashn_synth::retarget::standard_rules(),
            target_name: target.name(),
            target_params: target.cache_params(),
            source: None,
        }
    }

    /// Overrides the rule table.
    #[must_use]
    pub fn with_rules(mut self, rules: Arc<RuleSet>) -> Self {
        self.rules = rules;
        self
    }

    /// Restricts rewriting to gates native to the registered source set
    /// `source` (by basis identity).
    #[must_use]
    pub fn source(mut self, source: &(impl Basis + ?Sized)) -> Self {
        self.source = Some((source.name(), source.cache_params()));
        self
    }

    /// Rewrites every recognized gate regardless of which set it came
    /// from (the default).
    #[must_use]
    pub fn any_source(mut self) -> Self {
        self.source = None;
        self
    }
}

impl Pass for Retarget {
    fn name(&self) -> String {
        format!("retarget[{}]", self.target_name)
    }

    fn run(&self, dag: &mut DagCircuit) -> Result<bool, OptError> {
        let mut changed = false;
        for id in dag.topo_order() {
            if !dag.is_live(id) {
                continue;
            }
            let g = dag.instruction(id);
            if g.qubits.len() != 2 || g.error_rate.is_some() {
                continue;
            }
            // Idempotence: a gate native to the target set stays put (so
            // CX→CX is the identity, and rule fragments — built from
            // target-native entanglers — are never re-rewritten).
            if self
                .rules
                .is_native(&g.matrix, &self.target_name, &self.target_params)
            {
                continue;
            }
            if let Some((src_name, src_params)) = &self.source {
                if !self.rules.is_native(&g.matrix, src_name, src_params) {
                    continue;
                }
            }
            let Some(known) =
                self.rules
                    .rewrite_exact(&g.matrix, &self.target_name, &self.target_params)
            else {
                continue;
            };
            let fragment: Circuit = known.circuit.clone().into();
            let (wa, wb) = (g.qubits[0], g.qubits[1]);
            // Splice the fragment in before the gate's successor on each
            // wire (the resynthesis commit pattern).
            let anchor_a = dag.succ(id, wa);
            let anchor_b = dag.succ(id, wb);
            dag.remove(id);
            dag.mul_phase(fragment.phase);
            for gi in &fragment.instructions {
                let qubits: Vec<usize> = gi
                    .qubits
                    .iter()
                    .map(|&q| if q == 0 { wa } else { wb })
                    .collect();
                let anchors: Vec<Option<NodeId>> = qubits
                    .iter()
                    .map(|&q| if q == wa { anchor_a } else { anchor_b })
                    .collect();
                let mut mapped = Instruction::new(qubits, gi.matrix.clone(), gi.label.clone())
                    .with_duration(gi.duration);
                mapped.error_rate = gi.error_rate;
                dag.insert_before(mapped, &anchors)?;
            }
            changed = true;
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_gates::two::{cnot, cz, ecr, iswap, swap};
    use ashn_ir::Circuit;
    use ashn_math::CMat;
    use ashn_synth::basis::{CzBasis, EcrBasis, SqiswBasis};

    fn phase_dist(a: &CMat, b: &CMat) -> f64 {
        let tr = a.adjoint().matmul(b).trace();
        let phase = if tr.abs() > 1e-15 {
            tr / tr.abs()
        } else {
            ashn_math::Complex::ONE
        };
        a.scale(phase).dist(b)
    }

    fn gate_circuit(gates: &[(CMat, [usize; 2])], n: usize) -> Circuit {
        let mut circuit = Circuit::new(n);
        for (m, q) in gates {
            circuit
                .try_push(Instruction::new(q.to_vec(), m.clone(), "g"))
                .unwrap();
        }
        circuit
    }

    #[test]
    fn cx_traffic_retargets_onto_cz_exactly() {
        let circuit = gate_circuit(
            &[
                (cnot(), [0, 1]),
                (cnot(), [1, 0]),
                (swap(), [1, 2]),
                (iswap(), [0, 2]),
            ],
            3,
        );
        let reference = circuit.unitary();
        let mut dag = DagCircuit::from_circuit(&circuit).unwrap();
        let pass = Retarget::new(&CzBasis);
        assert!(pass.run(&mut dag).unwrap());
        let out = dag.into_circuit();
        for inst in &out.instructions {
            if inst.is_entangler() {
                assert!(inst.matrix.dist(&cz()) < 1e-12, "non-CZ entangler survived");
            }
        }
        assert!(
            phase_dist(&out.unitary(), &reference) < 1e-12,
            "dist {}",
            phase_dist(&out.unitary(), &reference)
        );
    }

    #[test]
    fn pass_is_idempotent() {
        let circuit = gate_circuit(&[(cnot(), [0, 1]), (swap(), [1, 2])], 3);
        let mut dag = DagCircuit::from_circuit(&circuit).unwrap();
        let pass = Retarget::new(&EcrBasis);
        assert!(pass.run(&mut dag).unwrap());
        assert!(!pass.run(&mut dag).unwrap(), "second sweep must be clean");
    }

    #[test]
    fn native_gates_are_left_untouched() {
        let circuit = gate_circuit(&[(cz(), [0, 1])], 2);
        let mut dag = DagCircuit::from_circuit(&circuit).unwrap();
        assert!(!Retarget::new(&CzBasis).run(&mut dag).unwrap());
        assert_eq!(dag.len(), 1);
    }

    #[test]
    fn source_filter_restricts_rewriting() {
        // CX is native to the CNOT source set; iSWAP is not — with the
        // filter on, only the CX is retargeted.
        let circuit = gate_circuit(&[(cnot(), [0, 1]), (iswap(), [0, 1])], 2);
        let reference = circuit.unitary();
        let mut dag = DagCircuit::from_circuit(&circuit).unwrap();
        let pass = Retarget::new(&SqiswBasis).source(&ashn_synth::basis::CnotBasis);
        assert!(pass.run(&mut dag).unwrap());
        let out = dag.into_circuit();
        assert!(
            out.instructions
                .iter()
                .any(|i| i.qubits.len() == 2 && i.matrix.dist(&iswap()) < 1e-12),
            "iSWAP outside the source set must survive"
        );
        assert!(phase_dist(&out.unitary(), &reference) < 1e-12);
    }

    #[test]
    fn retarget_onto_sqisw_uses_exact_pair_identities() {
        let circuit = gate_circuit(&[(cnot(), [0, 1]), (iswap(), [0, 1])], 2);
        let reference = circuit.unitary();
        let mut dag = DagCircuit::from_circuit(&circuit).unwrap();
        assert!(Retarget::new(&SqiswBasis).run(&mut dag).unwrap());
        let out = dag.into_circuit();
        assert_eq!(out.entangler_count(), 4, "2 SQiSW per CX/iSWAP");
        for inst in &out.instructions {
            if inst.is_entangler() {
                assert!(inst.matrix.dist(&ashn_gates::two::sqisw()) < 1e-12);
            }
        }
        assert!(phase_dist(&out.unitary(), &reference) < 1e-12);
    }

    #[test]
    fn ecr_gate_retargets_onto_cx() {
        let circuit = gate_circuit(&[(ecr(), [0, 1])], 2);
        let reference = circuit.unitary();
        let mut dag = DagCircuit::from_circuit(&circuit).unwrap();
        assert!(Retarget::new(&ashn_synth::basis::CnotBasis)
            .run(&mut dag)
            .unwrap());
        let out = dag.into_circuit();
        for inst in &out.instructions {
            if inst.is_entangler() {
                assert!(inst.matrix.dist(&cnot()) < 1e-12);
            }
        }
        assert!(phase_dist(&out.unitary(), &reference) < 1e-12);
    }
}
