//! Collect2q + Resynthesize: the headline pass realizing the paper's
//! "any two-qubit block is one native gate" claim on arbitrary circuits.

use crate::dag::{DagCircuit, NodeId};
use crate::error::OptError;
use crate::pass::Pass;
use ashn_ir::classify::matrix_on;
use ashn_ir::{Basis, Instruction};
use ashn_math::CMat;
use ashn_synth::resynth::resynthesize_block;

/// Gathers maximal two-qubit runs into a single 4×4 unitary and re-emits
/// each through a native [`Basis`], keeping the replacement only when it is
/// strictly cheaper.
///
/// For every unvisited two-qubit gate (in topological order) the pass grows
/// the maximal contiguous block on that wire pair — single-qubit gates on
/// either wire and two-qubit gates on exactly that pair, fenced by gates
/// that leave the pair or carry noise annotations — multiplies it into one
/// `SU(4)` target, and asks the basis to resynthesize it. The basis
/// KAK-canonicalizes the target internally; wrapped in
/// [`ashn_synth::cache::SynthCache`] (as `ashn::Compiler` does), repeated
/// Weyl classes skip the numerical search entirely.
///
/// Blocks already at minimal cost are skipped before any synthesis runs:
/// when the block's entangler count equals
/// [`Basis::expected_entanglers`] for its class and its single-qubit
/// dressing is within the `2(k+1)` locals a fused resynthesis could emit,
/// no rewrite can win. A replacement is committed only when
///
/// 1. its realized unitary matches the block target within
///    [`Resynthesize::accept_tol`] (measured, not assumed), and
/// 2. it is strictly cheaper: fewer entanglers, or equally many with fewer
///    total gates, or equal counts with shorter interaction time.
///
/// Per-block synthesis failures skip the block rather than aborting the
/// pass — an optimizer must degrade to "no rewrite", never to an error, on
/// targets a numerical basis rejects.
#[derive(Clone, Debug)]
pub struct Resynthesize<B> {
    basis: B,
    /// Maximum Frobenius error between a replacement's unitary and the
    /// block target for the replacement to be accepted.
    pub accept_tol: f64,
}

impl<B: Basis> Resynthesize<B> {
    /// A resynthesis pass over `basis` accepting replacements within
    /// `accept_tol` (Frobenius) of the block unitary.
    pub fn new(basis: B, accept_tol: f64) -> Self {
        Self { basis, accept_tol }
    }
}

/// A collected block: nodes in a valid topological order plus the per-wire
/// insertion anchors (the first node *after* the block on each wire).
struct Block {
    nodes: Vec<NodeId>,
    anchor_a: Option<NodeId>,
    anchor_b: Option<NodeId>,
}

fn is_plain_1q_on(g: &Instruction, wire: usize) -> bool {
    g.qubits == [wire] && g.error_rate.is_none()
}

fn is_pair_2q(g: &Instruction, wa: usize, wb: usize) -> bool {
    g.qubits.len() == 2
        && g.qubits.contains(&wa)
        && g.qubits.contains(&wb)
        && g.error_rate.is_none()
}

/// Grows the maximal block around `seed` (a two-qubit gate on `(wa, wb)`).
/// The returned node list is a valid topological order of the block: each
/// backward 1q run is emitted chain-first (the two runs touch disjoint
/// wires), and forward growth only appends a node once its in-block
/// predecessors are present.
fn collect_block(dag: &DagCircuit, seed: NodeId, wa: usize, wb: usize) -> Block {
    let mut nodes = Vec::new();
    // Backward: contiguous plain 1q runs feeding the seed on each wire.
    for w in [wa, wb] {
        let mut run = Vec::new();
        let mut p = dag.pred(seed, w);
        while let Some(x) = p {
            if !is_plain_1q_on(dag.instruction(x), w) {
                break;
            }
            run.push(x);
            p = dag.pred(x, w);
        }
        nodes.extend(run.into_iter().rev());
    }
    nodes.push(seed);
    // Forward: plain 1q gates on either wire, and 2q gates on exactly this
    // pair once both wire frontiers agree on them.
    let (mut last_a, mut last_b) = (seed, seed);
    loop {
        let mut progressed = false;
        for w in [wa, wb] {
            let last = if w == wa { last_a } else { last_b };
            let Some(x) = dag.succ(last, w) else { continue };
            let g = dag.instruction(x);
            if is_plain_1q_on(g, w) {
                nodes.push(x);
                if w == wa {
                    last_a = x;
                } else {
                    last_b = x;
                }
                progressed = true;
            } else if is_pair_2q(g, wa, wb)
                && dag.succ(last_a, wa) == Some(x)
                && dag.succ(last_b, wb) == Some(x)
            {
                nodes.push(x);
                last_a = x;
                last_b = x;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    Block {
        nodes,
        anchor_a: dag.succ(last_a, wa),
        anchor_b: dag.succ(last_b, wb),
    }
}

impl<B: Basis> Pass for Resynthesize<B> {
    fn name(&self) -> String {
        format!("resynth[{}]", self.basis.name())
    }

    fn run(&self, dag: &mut DagCircuit) -> Result<bool, OptError> {
        let mut changed = false;
        let order = dag.topo_order();
        let mut visited = vec![false; dag.capacity()];
        for &seed in &order {
            if !dag.is_live(seed) || visited[seed] {
                continue;
            }
            let g = dag.instruction(seed);
            if g.qubits.len() != 2 || g.error_rate.is_some() {
                continue;
            }
            let (wa, wb) = {
                let (a, b) = (g.qubits[0], g.qubits[1]);
                (a.min(b), a.max(b))
            };
            let block = collect_block(dag, seed, wa, wb);
            // Replacement nodes from an earlier commit carry ids past the
            // sweep's snapshot; they can join a later block but were never
            // seed candidates, so marking the snapshot-era ids suffices.
            for &id in &block.nodes {
                if id < visited.len() {
                    visited[id] = true;
                }
            }

            // Accumulate the block unitary on the wire order [wa, wb].
            let mut u = CMat::identity(4);
            let mut cur_2q = 0usize;
            let mut cur_duration = 0.0;
            for &id in &block.nodes {
                let gi = dag.instruction(id);
                u = matrix_on(gi, &[wa, wb])?.matmul(&u);
                if gi.is_entangler() {
                    cur_2q += 1;
                    cur_duration += gi.duration;
                }
            }
            let cur_gates = block.nodes.len();

            // Already minimal? A fused resynthesis of a k-entangler class
            // carries at most 2(k+1) single-qubit locals. Expected counts
            // come from the retargeting registry's per-basis metadata when
            // the basis publishes it (one classifier for every gate set),
            // falling back to the basis's own estimate.
            let expected = ashn_synth::retarget::expected_entanglers_for(&self.basis, &u);
            if cur_2q <= expected && cur_gates <= expected + 2 * (expected + 1) {
                continue;
            }

            // Recompile through the basis; skip the block on failure or
            // when the realized error exceeds the acceptance tolerance.
            let Ok(replacement) = resynthesize_block(&u, &self.basis) else {
                continue;
            };
            if replacement.error > self.accept_tol {
                continue;
            }
            let new = &replacement.circuit;
            let new_2q = new.entangler_count();
            let new_gates = new.instructions.len();
            let new_duration = new.entangler_duration();
            let better = new_2q < cur_2q
                || (new_2q == cur_2q && new_gates < cur_gates)
                || (new_2q == cur_2q
                    && new_gates == cur_gates
                    && new_duration < cur_duration - 1e-12);
            if !better {
                continue;
            }

            // Commit: splice the replacement in before the block's
            // successors on each wire.
            for &id in &block.nodes {
                dag.remove(id);
            }
            dag.mul_phase(new.phase);
            for gi in &new.instructions {
                let qubits: Vec<usize> = gi
                    .qubits
                    .iter()
                    .map(|&q| if q == 0 { wa } else { wb })
                    .collect();
                let anchors: Vec<Option<NodeId>> = qubits
                    .iter()
                    .map(|&q| {
                        if q == wa {
                            block.anchor_a
                        } else {
                            block.anchor_b
                        }
                    })
                    .collect();
                let mut mapped = Instruction::new(qubits, gi.matrix.clone(), gi.label.clone())
                    .with_duration(gi.duration);
                mapped.error_rate = gi.error_rate;
                dag.insert_before(mapped, &anchors)?;
            }
            changed = true;
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_ir::Circuit;
    use ashn_math::randmat::haar_unitary;
    use ashn_synth::basis::CzBasis;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Frobenius distance after aligning global phases.
    fn phase_dist(a: &CMat, b: &CMat) -> f64 {
        let tr = a.adjoint().matmul(b).trace();
        let phase = if tr.abs() > 1e-15 {
            tr / tr.abs()
        } else {
            ashn_math::Complex::ONE
        };
        a.scale(phase).dist(b)
    }

    #[test]
    fn six_cz_block_collapses_to_three() {
        // Two consecutive CZ-synthesized Haar gates on the same pair form
        // one block of 6 CZs; the combined class needs only 3.
        let mut rng = StdRng::seed_from_u64(11);
        let mut circuit = Circuit::new(2);
        for _ in 0..2 {
            let u = haar_unitary(4, &mut rng);
            let part = CzBasis.synthesize(&u).unwrap().fuse_single_qubit_runs();
            circuit.append(part).unwrap();
        }
        assert_eq!(circuit.entangler_count(), 6);
        let reference = circuit.unitary();
        let mut dag = DagCircuit::from_circuit(&circuit).unwrap();
        let pass = Resynthesize::new(CzBasis, 1e-6);
        assert!(pass.run(&mut dag).unwrap());
        let out = dag.into_circuit();
        assert_eq!(out.entangler_count(), 3);
        assert!(
            phase_dist(&out.unitary(), &reference) < 1e-6,
            "dist {}",
            phase_dist(&out.unitary(), &reference)
        );
    }

    #[test]
    fn minimal_blocks_are_skipped() {
        let mut rng = StdRng::seed_from_u64(12);
        let u = haar_unitary(4, &mut rng);
        let circuit = CzBasis.synthesize(&u).unwrap().fuse_single_qubit_runs();
        let before = circuit.instructions.len();
        let mut dag = DagCircuit::from_circuit(&circuit).unwrap();
        let pass = Resynthesize::new(CzBasis, 1e-6);
        assert!(
            !pass.run(&mut dag).unwrap(),
            "minimal block must be skipped"
        );
        assert_eq!(dag.len(), before);
    }

    #[test]
    fn blocks_fenced_by_other_wires_stay_separate() {
        // g(0,1) · g(1,2) · g(0,1): the middle gate fences the outer pair,
        // so the entangler runs must not merge across it — the CZ count
        // stays 3 per gate even though stray single-qubit dressing may be
        // absorbed (single-qubit gates on wire 0 commute past the fence).
        let mut rng = StdRng::seed_from_u64(13);
        let mut circuit = Circuit::new(3);
        for pair in [[0usize, 1], [1, 2], [0, 1]] {
            let u = haar_unitary(4, &mut rng);
            let part = CzBasis.synthesize(&u).unwrap().fuse_single_qubit_runs();
            circuit.append(part.embed(3, &pair).unwrap()).unwrap();
        }
        assert_eq!(circuit.entangler_count(), 9);
        let reference = circuit.unitary();
        let mut dag = DagCircuit::from_circuit(&circuit).unwrap();
        let pass = Resynthesize::new(CzBasis, 1e-6);
        pass.run(&mut dag).unwrap();
        let out = dag.into_circuit();
        assert_eq!(out.entangler_count(), 9, "no cross-fence entangler merge");
        assert!(
            phase_dist(&out.unitary(), &reference) < 1e-6,
            "dist {}",
            phase_dist(&out.unitary(), &reference)
        );
    }
}
