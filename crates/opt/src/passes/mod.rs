//! The built-in optimization passes.

mod commute_cancel;
mod merge1q;
mod phase_fold;
mod resynth;
mod retarget;

pub use commute_cancel::CommuteCancel;
pub use merge1q::Merge1q;
pub use phase_fold::PhaseFold;
pub use resynth::Resynthesize;
pub use retarget::Retarget;

/// Default tolerance for the *exact* rewrite passes (adjacent merges,
/// phase folds, commutation-aware cancellation).
///
/// Deliberately far below working precision: a gate is only dropped or
/// commuted when the decision holds at near-machine accuracy, so the
/// structural passes perturb the circuit unitary by well under `1e-12`
/// even after hundreds of rewrites (the bound the optimizer soundness
/// suite enforces). Approximate rewrites belong to
/// [`Resynthesize`], which carries its own acceptance tolerance.
pub const EXACT_TOL: f64 = 1e-13;
