//! Commutation-aware cancellation.

use crate::dag::DagCircuit;
use crate::error::OptError;
use crate::pass::Pass;
use crate::passes::EXACT_TOL;
use ashn_ir::classify::{matrix_on, scalar_of};
use ashn_ir::Instruction;

/// Cancels gate pairs that multiply to a pure phase, even when separated by
/// commuting gates.
///
/// For each gate `a` (in topological order) the pass scans forward through
/// the circuit: gates on disjoint wires are skipped freely; a gate sharing
/// wires with `a` may be crossed only when it commutes with `a` (checked
/// structurally — diagonal×diagonal — or by the dense commutator on the
/// joint wire space). When the scan reaches a gate `b` on exactly `a`'s
/// wire set whose product with `a` is `phase·I`, both gates are removed and
/// the phase folds into the circuit's global phase. This is the pass that
/// collapses `CZ …diag… CZ` echoes and `Rz`-pushing cancellations that
/// plain adjacent-merge can never see.
#[derive(Clone, Copy, Debug)]
pub struct CommuteCancel {
    /// Cancellation/commutation tolerance (Frobenius); see
    /// [`EXACT_TOL`](crate::passes::EXACT_TOL).
    pub tol: f64,
}

impl Default for CommuteCancel {
    fn default() -> Self {
        Self { tol: EXACT_TOL }
    }
}

fn same_wire_set(a: &Instruction, b: &Instruction) -> bool {
    a.qubits.len() == b.qubits.len() && a.qubits.iter().all(|q| b.qubits.contains(q))
}

fn shares_wire(a: &Instruction, b: &Instruction) -> bool {
    a.qubits.iter().any(|q| b.qubits.contains(q))
}

impl Pass for CommuteCancel {
    fn name(&self) -> String {
        "commute-cancel".into()
    }

    fn run(&self, dag: &mut DagCircuit) -> Result<bool, OptError> {
        let mut changed = false;
        let order = dag.topo_order();
        for (i, &a) in order.iter().enumerate() {
            if !dag.is_live(a) {
                continue;
            }
            let ga = dag.instruction(a).clone();
            if ga.error_rate.is_some() {
                continue;
            }
            let mut wires = ga.qubits.clone();
            wires.sort_unstable();
            for &b in &order[i + 1..] {
                if !dag.is_live(b) {
                    continue;
                }
                let gb = dag.instruction(b);
                if !shares_wire(&ga, gb) {
                    continue;
                }
                if same_wire_set(&ga, gb) && gb.error_rate.is_none() {
                    let product = matrix_on(gb, &wires)?.matmul(&matrix_on(&ga, &wires)?);
                    if let Some(phase) = scalar_of(&product, self.tol) {
                        dag.mul_phase(phase);
                        dag.remove(a);
                        dag.remove(b);
                        changed = true;
                        break;
                    }
                }
                // Not a cancelling partner: `a` may only slide past when
                // the two gates commute (annotated gates are opaque noise
                // events — never crossed).
                if gb.error_rate.is_some() || !ga.commutes_with(gb, self.tol) {
                    break;
                }
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_ir::Circuit;
    use ashn_math::{c, CMat, Complex};

    fn cz() -> CMat {
        CMat::diag(&[Complex::ONE, Complex::ONE, Complex::ONE, c(-1.0, 0.0)])
    }

    fn rz(theta: f64) -> CMat {
        CMat::diag(&[Complex::cis(-theta / 2.0), Complex::cis(theta / 2.0)])
    }

    fn h() -> CMat {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        CMat::from_rows_f64(&[&[s, s], &[s, -s]])
    }

    #[test]
    fn cz_pair_cancels_through_commuting_diagonals() {
        let mut circuit = Circuit::new(3);
        circuit.push(Instruction::new(vec![0, 1], cz(), "CZ"));
        circuit.push(Instruction::new(vec![0], rz(0.7), "Rz")); // diagonal, commutes
        circuit.push(Instruction::new(vec![1, 2], cz(), "CZ12")); // diagonal, commutes
        circuit.push(Instruction::new(vec![2], h(), "H")); // disjoint from {0,1}
        circuit.push(Instruction::new(vec![0, 1], cz(), "CZ"));
        let reference = circuit.unitary();
        let mut dag = DagCircuit::from_circuit(&circuit).unwrap();
        assert!(CommuteCancel::default().run(&mut dag).unwrap());
        let out = dag.into_circuit();
        assert_eq!(out.entangler_count(), 1, "one CZ pair cancels");
        assert!(out.unitary().dist(&reference) < 1e-12);
    }

    #[test]
    fn non_commuting_obstruction_blocks_cancellation() {
        let mut circuit = Circuit::new(2);
        circuit.push(Instruction::new(vec![0, 1], cz(), "CZ"));
        circuit.push(Instruction::new(vec![0], h(), "H")); // breaks diagonality
        circuit.push(Instruction::new(vec![0, 1], cz(), "CZ"));
        let mut dag = DagCircuit::from_circuit(&circuit).unwrap();
        assert!(!CommuteCancel::default().run(&mut dag).unwrap());
        assert_eq!(dag.len(), 3);
    }

    #[test]
    fn reversed_wire_order_still_cancels() {
        // CZ on [0,1] and its inverse written on [1,0]: the wire-set match
        // and the canonical re-expression must see through the ordering.
        let mut circuit = Circuit::new(2);
        circuit.push(Instruction::new(vec![0, 1], cz(), "CZ"));
        circuit.push(Instruction::new(vec![1, 0], cz(), "CZ'"));
        let mut dag = DagCircuit::from_circuit(&circuit).unwrap();
        assert!(CommuteCancel::default().run(&mut dag).unwrap());
        assert!(dag.is_empty());
    }
}
