//! Global-phase folding.

use crate::dag::DagCircuit;
use crate::error::OptError;
use crate::pass::Pass;
use crate::passes::EXACT_TOL;

/// Removes every gate (any arity) that is a pure phase times the identity,
/// folding the phase into the circuit's global phase.
///
/// [`Merge1q`](crate::passes::Merge1q) already drops single-qubit
/// identities it creates; this pass additionally catches identity-like
/// *two-qubit* gates (e.g. a `ZZ(2π)` echo, or a resynthesized block that
/// collapsed to the identity class) and standalone phase gates. Gates
/// carrying an explicit `error_rate` annotation are kept — they are noise
/// events even when their unitary is trivial.
#[derive(Clone, Copy, Debug)]
pub struct PhaseFold {
    /// Identity-detection tolerance (Frobenius); see
    /// [`EXACT_TOL`](crate::passes::EXACT_TOL).
    pub tol: f64,
}

impl Default for PhaseFold {
    fn default() -> Self {
        Self { tol: EXACT_TOL }
    }
}

impl Pass for PhaseFold {
    fn name(&self) -> String {
        "phase-fold".into()
    }

    fn run(&self, dag: &mut DagCircuit) -> Result<bool, OptError> {
        let mut changed = false;
        let ids: Vec<_> = dag.node_ids().collect();
        for id in ids {
            let g = dag.instruction(id);
            if g.error_rate.is_some() {
                continue;
            }
            if let Some(phase) = g.phase_of_identity(self.tol) {
                dag.mul_phase(phase);
                dag.remove(id);
                changed = true;
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_ir::{Circuit, Instruction};
    use ashn_math::{CMat, Complex};

    #[test]
    fn folds_identity_two_qubit_gates() {
        let phase = Complex::cis(0.4);
        let mut c = Circuit::new(2);
        c.push(Instruction::new(
            vec![0, 1],
            CMat::identity(4).scale(phase),
            "ZZ(2π)",
        ));
        let x = CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]]);
        c.push(Instruction::new(vec![0], x, "X"));
        let reference = c.unitary();
        let mut dag = DagCircuit::from_circuit(&c).unwrap();
        assert!(PhaseFold::default().run(&mut dag).unwrap());
        assert_eq!(dag.len(), 1);
        assert!((dag.phase() - phase).abs() < 1e-14);
        assert!(dag.to_circuit().unitary().dist(&reference) < 1e-12);
    }

    #[test]
    fn keeps_annotated_identities() {
        let mut c = Circuit::new(1);
        c.push(Instruction::new(vec![0], CMat::identity(2), "idle").with_error_rate(0.01));
        let mut dag = DagCircuit::from_circuit(&c).unwrap();
        assert!(!PhaseFold::default().run(&mut dag).unwrap());
        assert_eq!(dag.len(), 1);
    }
}
