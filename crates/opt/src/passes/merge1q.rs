//! Adjacent single-qubit merge.

use crate::dag::DagCircuit;
use crate::error::OptError;
use crate::pass::Pass;
use crate::passes::EXACT_TOL;
use ashn_ir::Instruction;

/// Merges runs of adjacent single-qubit gates per wire into one gate (the
/// matrix product), then drops any merged gate that is a pure phase times
/// the identity (folding the phase into the circuit's global phase).
///
/// Gates carrying an explicit `error_rate` annotation are never merged —
/// each annotated gate is a distinct noise event, and merging would change
/// the noise semantics, not just the unitary. Durations of merged gates
/// are summed.
#[derive(Clone, Copy, Debug)]
pub struct Merge1q {
    /// Identity-drop tolerance (Frobenius); see
    /// [`EXACT_TOL`](crate::passes::EXACT_TOL).
    pub tol: f64,
}

impl Default for Merge1q {
    fn default() -> Self {
        Self { tol: EXACT_TOL }
    }
}

fn mergeable_1q(g: &Instruction) -> bool {
    g.qubits.len() == 1 && g.error_rate.is_none()
}

impl Pass for Merge1q {
    fn name(&self) -> String {
        "merge-1q".into()
    }

    fn run(&self, dag: &mut DagCircuit) -> Result<bool, OptError> {
        let mut changed = false;
        for q in 0..dag.n_qubits() {
            let mut cur = dag.wire_head(q);
            while let Some(a) = cur {
                if !mergeable_1q(dag.instruction(a)) {
                    cur = dag.succ(a, q);
                    continue;
                }
                // Absorb every following mergeable 1q gate into `a`.
                while let Some(b) = dag.succ(a, q) {
                    if !mergeable_1q(dag.instruction(b)) {
                        break;
                    }
                    let gb = dag.remove(b);
                    let ga = dag.instruction(a);
                    let merged = Instruction::new(vec![q], gb.matrix.matmul(&ga.matrix), "1q")
                        .with_duration(ga.duration + gb.duration);
                    dag.replace_gate(a, merged);
                    changed = true;
                }
                let next = dag.succ(a, q);
                if let Some(phase) = dag.instruction(a).phase_of_identity(self.tol) {
                    dag.mul_phase(phase);
                    dag.remove(a);
                    changed = true;
                }
                cur = next;
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_ir::Circuit;
    use ashn_math::randmat::haar_unitary;
    use ashn_math::CMat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn merges_runs_and_drops_identities() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = haar_unitary(2, &mut rng);
        let mut c = Circuit::new(2);
        c.push(Instruction::new(vec![0], u.clone(), "a"));
        c.push(Instruction::new(vec![0], u.adjoint(), "a_dag"));
        c.push(Instruction::new(vec![1], haar_unitary(2, &mut rng), "b"));
        c.push(Instruction::new(vec![1], haar_unitary(2, &mut rng), "c"));
        let reference = c.unitary();
        let mut dag = DagCircuit::from_circuit(&c).unwrap();
        assert!(Merge1q::default().run(&mut dag).unwrap());
        // Wire 0 collapses to nothing (u·u† = I); wire 1 to one gate.
        assert_eq!(dag.len(), 1);
        assert!(dag.to_circuit().unitary().dist(&reference) < 1e-12);
    }

    #[test]
    fn annotated_gates_are_left_alone() {
        let x = CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let mut c = Circuit::new(1);
        c.push(Instruction::new(vec![0], x.clone(), "X").with_error_rate(0.01));
        c.push(Instruction::new(vec![0], x, "X").with_error_rate(0.01));
        let mut dag = DagCircuit::from_circuit(&c).unwrap();
        assert!(!Merge1q::default().run(&mut dag).unwrap());
        assert_eq!(dag.len(), 2);
    }
}
