//! Optimizer soundness: every pass pipeline must preserve the circuit
//! unitary (global phase folded) at `1e-12` on randomized 2–4 qubit
//! circuits, and the DAG↔linear round trip must be bit-identical when no
//! pass fires.

use ashn_ir::{Basis, Circuit, Instruction};
use ashn_math::randmat::haar_unitary;
use ashn_math::{CMat, Complex};
use ashn_opt::{standard_pipeline, structural_pipeline, DagCircuit, PassManager, Resynthesize};
use ashn_synth::basis::{AshnBasis, CzBasis};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Frobenius distance after optimally aligning global phases.
fn phase_folded_distance(a: &CMat, b: &CMat) -> f64 {
    let tr = a.adjoint().matmul(b).trace();
    let phase = if tr.abs() > 1e-15 {
        tr / tr.abs()
    } else {
        Complex::ONE
    };
    a.scale(phase).dist(b)
}

fn cz() -> CMat {
    CMat::diag(&[
        Complex::ONE,
        Complex::ONE,
        Complex::ONE,
        ashn_math::c(-1.0, 0.0),
    ])
}

/// A randomized circuit deliberately rich in optimizer bait: Haar 1q/2q
/// gates, CZ pairs that cancel through commuting diagonals, inverse pairs,
/// and pure-phase identities.
fn random_circuit(n: usize, gates: usize, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new(n);
    c.phase = Complex::cis(rng.gen_range(-3.0..3.0));
    while c.instructions.len() < gates {
        let pick = rng.gen_range(0..10usize);
        match pick {
            0..=2 => {
                let q = rng.gen_range(0..n);
                c.push(Instruction::new(vec![q], haar_unitary(2, rng), "1q"));
            }
            3..=5 => {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                c.push(Instruction::new(vec![a, b], haar_unitary(4, rng), "2q"));
            }
            6 => {
                // CZ pair separated by a commuting diagonal on one wire.
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                let theta = rng.gen_range(-3.0..3.0f64);
                let rz = CMat::diag(&[Complex::cis(-theta / 2.0), Complex::cis(theta / 2.0)]);
                c.push(Instruction::new(vec![a, b], cz(), "CZ"));
                c.push(Instruction::new(vec![a], rz, "Rz"));
                c.push(Instruction::new(vec![a, b], cz(), "CZ"));
            }
            7 => {
                // Adjacent inverse pair on one wire.
                let q = rng.gen_range(0..n);
                let u = haar_unitary(2, rng);
                c.push(Instruction::new(vec![q], u.adjoint(), "u_dag"));
                c.push(Instruction::new(vec![q], u, "u"));
            }
            8 => {
                // Pure phase "gate".
                let q = rng.gen_range(0..n);
                let phase = Complex::cis(rng.gen_range(-3.0..3.0));
                c.push(Instruction::new(
                    vec![q],
                    CMat::identity(2).scale(phase),
                    "ph",
                ));
            }
            _ => {
                // Two gates on the same pair: a resynthesis block.
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                c.push(Instruction::new(vec![a, b], haar_unitary(4, rng), "2q"));
                c.push(Instruction::new(vec![b, a], haar_unitary(4, rng), "2q"));
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The structural passes plus strictly-verified resynthesis preserve
    /// the unitary at 1e-12: every exact rewrite holds at near-machine
    /// precision, and a resynthesized block is committed only after its
    /// realized unitary is measured against the block target at 1e-13.
    #[test]
    fn optimize_is_unitary_equivalent_at_1e12(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..=4usize);
        let gates = rng.gen_range(6..=28usize);
        let circuit = random_circuit(n, gates, &mut rng);
        let reference = circuit.unitary();
        let pipeline = structural_pipeline()
            .with_pass(Resynthesize::new(CzBasis, 1e-13));
        let (optimized, stats) = pipeline.run(&circuit).expect("optimizes");
        let d = phase_folded_distance(&optimized.unitary(), &reference);
        prop_assert!(d < 1e-12, "equivalence broken: {d:.2e} (stats {stats})");
        prop_assert!(optimized.instructions.len() <= circuit.instructions.len());
        prop_assert_eq!(stats.before.gates, circuit.instructions.len());
    }

    /// DAG → linear round trip is bit-identical when no pass fires: same
    /// instruction order, same matrices to the bit, same annotations.
    #[test]
    fn round_trip_is_bit_identical_when_nothing_fires(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDA6);
        let n = rng.gen_range(2..=4usize);
        // No two adjacent 1q gates on a wire, no cancelling pairs: nothing
        // for any pass to do.
        let mut circuit = Circuit::new(n);
        circuit.phase = Complex::cis(rng.gen_range(-3.0..3.0));
        for _ in 0..rng.gen_range(3..=10usize) {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a { b = rng.gen_range(0..n); }
            circuit.push(Instruction::new(vec![a], haar_unitary(2, &mut rng), "1q"));
            circuit.push(
                Instruction::new(vec![a, b], haar_unitary(4, &mut rng), "2q")
                    .with_duration(rng.gen_range(0.1..2.0))
                    .with_error_rate(0.001),
            );
        }
        // Plain round trip.
        let back = DagCircuit::from_circuit(&circuit).expect("valid").into_circuit();
        assert_bit_identical(&circuit, &back);
        // Round trip through a pipeline that inspects but never fires
        // (annotated 2q gates fence every rewrite; single 1q runs and
        // 1-entangler blocks are already minimal).
        let pipeline = structural_pipeline()
            .with_pass(Resynthesize::new(CzBasis, 1e-13));
        let (optimized, stats) = pipeline.run(&circuit).expect("optimizes");
        prop_assert_eq!(stats.before.gates, stats.after.gates, "nothing to do");
        assert_bit_identical(&circuit, &optimized);
    }
}

fn assert_bit_identical(a: &Circuit, b: &Circuit) {
    assert_eq!(a.n, b.n);
    assert_eq!(a.phase.re.to_bits(), b.phase.re.to_bits());
    assert_eq!(a.phase.im.to_bits(), b.phase.im.to_bits());
    assert_eq!(a.instructions.len(), b.instructions.len());
    for (x, y) in a.instructions.iter().zip(&b.instructions) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.qubits, y.qubits);
        assert_eq!(x.duration.to_bits(), y.duration.to_bits());
        assert_eq!(
            x.error_rate.map(f64::to_bits),
            y.error_rate.map(f64::to_bits)
        );
        assert_eq!(x.matrix.rows(), y.matrix.rows());
        for (p, q) in x.matrix.as_slice().iter().zip(y.matrix.as_slice()) {
            assert_eq!(p.re.to_bits(), q.re.to_bits());
            assert_eq!(p.im.to_bits(), q.im.to_bits());
        }
    }
}

/// The full standard pipeline over the AshN basis: equivalence within the
/// block-acceptance tolerance, with the expected entangler collapse (two
/// same-pair Haar gates = one block = one pulse).
#[test]
fn ashn_standard_pipeline_collapses_blocks_within_tolerance() {
    let mut rng = StdRng::seed_from_u64(977);
    let basis = AshnBasis::ideal();
    let mut circuit = Circuit::new(3);
    for pair in [[0usize, 1], [0, 1], [1, 2], [1, 2], [1, 2]] {
        let u = haar_unitary(4, &mut rng);
        let part = basis.synthesize(&u).unwrap().fuse_single_qubit_runs();
        circuit.append(part.embed(3, &pair).unwrap()).unwrap();
    }
    assert_eq!(circuit.entangler_count(), 5);
    let reference = circuit.unitary();
    let (optimized, stats) = standard_pipeline(basis, 1e-5)
        .run(&circuit)
        .expect("optimizes");
    assert_eq!(
        optimized.entangler_count(),
        2,
        "each same-pair run is one AshN pulse (stats {stats})"
    );
    let d = phase_folded_distance(&optimized.unitary(), &reference);
    assert!(d < 1e-4, "replacement drifted: {d:.2e}");
    assert_eq!(stats.before.two_qubit, 5);
    assert_eq!(stats.after.two_qubit, 2);
}

/// An empty pipeline is the identity transformation.
#[test]
fn empty_pipeline_is_identity() {
    let mut rng = StdRng::seed_from_u64(3);
    let circuit = random_circuit(3, 12, &mut rng);
    let (out, stats) = PassManager::new().run(&circuit).expect("runs");
    assert_bit_identical(&circuit, &out);
    assert_eq!(stats.iterations, 1);
    assert!(stats.passes.is_empty());
}
