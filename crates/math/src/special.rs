//! Small special functions used by the AshN pulse formulas.

/// The unnormalised sinc function `sin(x)/x`, with `sinc(0) = 1`.
///
/// # Examples
///
/// ```
/// use ashn_math::special::sinc;
/// assert_eq!(sinc(0.0), 1.0);
/// assert!(sinc(std::f64::consts::PI).abs() < 1e-15);
/// ```
pub fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-8 {
        1.0 - x * x / 6.0
    } else {
        x.sin() / x
    }
}

/// Inverse of [`sinc`] on its decreasing branch `[0, π] → [0, 1]`.
///
/// This is the branch used by the AshN-ND formulas (paper Algorithms 2–3):
/// given `y ∈ [0, 1]`, returns the unique `x ∈ [0, π]` with `sinc(x) = y`.
///
/// Inputs slightly outside `[0, 1]` (within `1e-9`, from round-off) are
/// clamped.
///
/// # Panics
///
/// Panics when `y` is outside `[−1e-9, 1 + 1e-9]`.
///
/// # Examples
///
/// ```
/// use ashn_math::special::{sinc, sinc_inv};
/// let x = sinc_inv(0.6366197723675814); // 2/π = sinc(π/2)
/// assert!((x - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
/// assert!((sinc(sinc_inv(0.3)) - 0.3).abs() < 1e-12);
/// ```
pub fn sinc_inv(y: f64) -> f64 {
    assert!(
        (-1e-9..=1.0 + 1e-9).contains(&y),
        "sinc_inv domain is [0, 1], got {y}"
    );
    let y = y.clamp(0.0, 1.0);
    if y >= 1.0 {
        return 0.0;
    }
    if y <= 0.0 {
        return std::f64::consts::PI;
    }
    let (mut lo, mut hi) = (0.0_f64, std::f64::consts::PI);
    // sinc is strictly decreasing on [0, π]: plain bisection converges.
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if sinc(mid) > y {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn sinc_near_zero_is_smooth() {
        assert!((sinc(1e-10) - 1.0).abs() < 1e-15);
        assert!((sinc(1e-4) - (1e-4_f64).sin() / 1e-4).abs() < 1e-15);
    }

    #[test]
    fn sinc_inv_endpoints() {
        assert_eq!(sinc_inv(1.0), 0.0);
        assert!((sinc_inv(0.0) - PI).abs() < 1e-12);
    }

    #[test]
    fn sinc_inv_round_trip() {
        for k in 1..100 {
            let y = k as f64 / 100.0;
            let x = sinc_inv(y);
            assert!((0.0..=PI).contains(&x));
            assert!((sinc(x) - y).abs() < 1e-11, "round trip failed at y={y}");
        }
    }

    #[test]
    #[should_panic(expected = "sinc_inv domain")]
    fn sinc_inv_rejects_out_of_range() {
        sinc_inv(1.5);
    }
}
