//! Derivative-free minimisation (Nelder–Mead downhill simplex).
//!
//! Used for the SQiSW middle-gate search, control-model calibration, and as
//! a refinement stage in the AshN-EA solver.

/// Options for [`nelder_mead`].
#[derive(Clone, Debug)]
pub struct NmOptions {
    /// Maximum number of function evaluations.
    pub max_evals: usize,
    /// Terminate when the simplex f-spread falls below this.
    pub f_tol: f64,
    /// Initial simplex step per coordinate.
    pub initial_step: f64,
    /// Terminate as soon as the best value reaches this (for objectives
    /// whose useful minimum is known, e.g. "zero up to round-off"). Default
    /// `NEG_INFINITY` disables it.
    pub f_target: f64,
    /// Additional *relative* spread tolerance: stop when the spread falls
    /// below `f_tol + f_tol_rel·|f_best|`. Lets runs stuck at a useless
    /// nonzero local minimum collapse in O(100) evaluations instead of
    /// exhausting `max_evals` chasing an absolute spread the floating-point
    /// noise floor can never reach. Default `0.0` disables it.
    pub f_tol_rel: f64,
}

impl Default for NmOptions {
    fn default() -> Self {
        Self {
            max_evals: 4000,
            f_tol: 1e-14,
            initial_step: 0.25,
            f_target: f64::NEG_INFINITY,
            f_tol_rel: 0.0,
        }
    }
}

/// Result of a Nelder–Mead run.
#[derive(Clone, Debug)]
pub struct NmResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub f: f64,
    /// Number of objective evaluations used.
    pub evals: usize,
}

/// Minimises `f` starting from `x0` with the standard Nelder–Mead simplex
/// (reflection 1, expansion 2, contraction ½, shrink ½).
///
/// # Panics
///
/// Panics if `x0` is empty.
pub fn nelder_mead(mut f: impl FnMut(&[f64]) -> f64, x0: &[f64], opts: &NmOptions) -> NmResult {
    let n = x0.len();
    assert!(n > 0, "nelder_mead needs at least one dimension");
    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    // Initial simplex: x0 plus a step along each axis.
    let mut pts: Vec<Vec<f64>> = vec![x0.to_vec()];
    for i in 0..n {
        let mut p = x0.to_vec();
        p[i] += if p[i].abs() > 1e-12 {
            opts.initial_step * p[i].abs().max(1.0)
        } else {
            opts.initial_step
        };
        pts.push(p);
    }
    let mut fv: Vec<f64> = pts.iter().map(|p| eval(p, &mut evals)).collect();

    while evals < opts.max_evals {
        // Order the simplex.
        let mut idx: Vec<usize> = (0..=n).collect();
        idx.sort_by(|&a, &b| fv[a].partial_cmp(&fv[b]).unwrap());
        let reordered: Vec<Vec<f64>> = idx.iter().map(|&i| pts[i].clone()).collect();
        let reordered_f: Vec<f64> = idx.iter().map(|&i| fv[i]).collect();
        pts = reordered;
        fv = reordered_f;

        if fv[0] <= opts.f_target {
            break;
        }
        if (fv[n] - fv[0]).abs() < opts.f_tol + opts.f_tol_rel * fv[0].abs() {
            break;
        }

        // Centroid of all but the worst.
        let mut cen = vec![0.0; n];
        for p in pts.iter().take(n) {
            for (ci, pi) in cen.iter_mut().zip(p.iter()) {
                *ci += pi / n as f64;
            }
        }
        let lerp = |a: &[f64], b: &[f64], t: f64| -> Vec<f64> {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x + t * (y - x))
                .collect()
        };

        let refl = lerp(&cen, &pts[n], -1.0);
        let f_refl = eval(&refl, &mut evals);
        if f_refl < fv[0] {
            let exp = lerp(&cen, &pts[n], -2.0);
            let f_exp = eval(&exp, &mut evals);
            if f_exp < f_refl {
                pts[n] = exp;
                fv[n] = f_exp;
            } else {
                pts[n] = refl;
                fv[n] = f_refl;
            }
        } else if f_refl < fv[n - 1] {
            pts[n] = refl;
            fv[n] = f_refl;
        } else {
            let con = if f_refl < fv[n] {
                lerp(&cen, &refl, 0.5)
            } else {
                lerp(&cen, &pts[n], 0.5)
            };
            let f_con = eval(&con, &mut evals);
            if f_con < fv[n].min(f_refl) {
                pts[n] = con;
                fv[n] = f_con;
            } else {
                // Shrink toward the best point.
                for i in 1..=n {
                    pts[i] = lerp(&pts[0], &pts[i], 0.5);
                    fv[i] = eval(&pts[i], &mut evals);
                }
            }
        }
    }

    let mut best = 0;
    for i in 1..=n {
        if fv[i] < fv[best] {
            best = i;
        }
    }
    NmResult {
        x: pts[best].clone(),
        f: fv[best],
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_quadratic_bowl() {
        let r = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            &NmOptions::default(),
        );
        assert!(r.f < 1e-10);
        assert!((r.x[0] - 3.0).abs() < 1e-4);
        assert!((r.x[1] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn minimises_rosenbrock_reasonably() {
        let rosen = |x: &[f64]| 100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2);
        let r = nelder_mead(
            rosen,
            &[-1.2, 1.0],
            &NmOptions {
                max_evals: 20_000,
                ..Default::default()
            },
        );
        assert!(r.f < 1e-6, "rosenbrock f = {}", r.f);
    }

    #[test]
    fn handles_nan_objective_gracefully() {
        let r = nelder_mead(
            |x| {
                if x[0] < 0.0 {
                    f64::NAN
                } else {
                    (x[0] - 1.0).powi(2)
                }
            },
            &[2.0],
            &NmOptions::default(),
        );
        assert!((r.x[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn one_dimensional_works() {
        let r = nelder_mead(|x| (x[0] - 0.25).powi(2), &[10.0], &NmOptions::default());
        assert!((r.x[0] - 0.25).abs() < 1e-5);
    }
}
