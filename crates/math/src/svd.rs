//! Singular value and polar decompositions for square complex matrices.

use crate::complex::{c, Complex};
use crate::eig::eigh;
use crate::mat::CMat;

/// Result of a singular value decomposition `A = U diag(σ) V†` (square case).
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors (unitary).
    pub u: CMat,
    /// Singular values, descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors (unitary).
    pub v: CMat,
}

impl Svd {
    /// Reassembles `U diag(σ) V†`.
    pub fn reconstruct(&self) -> CMat {
        let d = CMat::diag(&self.sigma.iter().map(|&s| c(s, 0.0)).collect::<Vec<_>>());
        self.u.matmul(&d).matmul(&self.v.adjoint())
    }
}

/// Gram–Schmidt completion: extends the first `k` orthonormal columns of `u`
/// to a full orthonormal basis.
fn complete_basis(u: &mut CMat, k: usize) {
    let n = u.rows();
    let mut have = k;
    let mut cand = 0usize;
    while have < n {
        // Start from a standard basis vector and orthogonalise.
        let mut v = vec![Complex::ZERO; n];
        v[cand % n] = Complex::ONE;
        cand += 1;
        for j in 0..have {
            let col = u.col(j);
            let inner: Complex = col.iter().zip(v.iter()).map(|(a, b)| a.conj() * *b).sum();
            for (vi, ci) in v.iter_mut().zip(col.iter()) {
                *vi -= inner * *ci;
            }
        }
        let norm = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm > 1e-6 {
            for vi in v.iter_mut() {
                *vi = *vi / norm;
            }
            u.set_col(have, &v);
            have += 1;
        }
        assert!(cand < 4 * n + 4, "basis completion failed to converge");
    }
}

/// Singular value decomposition of a square matrix via the Hermitian
/// eigenproblem of `A†A`.
///
/// Accurate to roughly `√ε` for tiny singular values, which is ample for the
/// well-conditioned unitary blocks this project manipulates.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn svd(a: &CMat) -> Svd {
    assert!(a.is_square(), "svd: only square matrices are supported");
    let n = a.rows();
    let e = eigh(&a.adjoint().matmul(a));
    // eigh sorts ascending; we want descending singular values.
    let mut v = CMat::zeros(n, n);
    let mut sigma = vec![0.0; n];
    for (j, s) in sigma.iter_mut().enumerate() {
        let src = n - 1 - j;
        *s = e.values[src].max(0.0).sqrt();
        v.set_col(j, &e.vectors.col(src));
    }
    let mut u = CMat::zeros(n, n);
    let mut filled = 0usize;
    for j in 0..n {
        if sigma[j] > 1e-12 * sigma[0].max(1.0) {
            let av = a.mul_vec(&v.col(j));
            let col: Vec<Complex> = av.iter().map(|z| *z / sigma[j]).collect();
            u.set_col(j, &col);
            filled = j + 1;
        } else {
            break;
        }
    }
    complete_basis(&mut u, filled);
    Svd { u, sigma, v }
}

/// Polar decomposition `A = W·P` with `W` unitary and `P = √(A†A)` positive
/// semidefinite.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn polar(a: &CMat) -> (CMat, CMat) {
    let s = svd(a);
    let w = s.u.matmul(&s.v.adjoint());
    let d = CMat::diag(&s.sigma.iter().map(|&x| c(x, 0.0)).collect::<Vec<_>>());
    let p = s.v.matmul(&d).matmul(&s.v.adjoint());
    (w, p)
}

/// The unitary that maximises `Re tr(A† W)` over all unitaries `W`, namely
/// the polar factor of `A`.
///
/// This is the work-horse of alternating circuit-instantiation updates.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn closest_unitary(a: &CMat) -> CMat {
    polar(a).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randmat::{ginibre, haar_unitary};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn svd_reconstructs_random_matrices() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in [2usize, 3, 4, 8] {
            let a = ginibre(n, &mut rng);
            let s = svd(&a);
            assert!(s.u.is_unitary(1e-8), "U not unitary at n={n}");
            assert!(s.v.is_unitary(1e-8), "V not unitary at n={n}");
            assert!(s.reconstruct().dist(&a) < 1e-7, "bad SVD at n={n}");
            for w in s.sigma.windows(2) {
                assert!(w[0] >= w[1] - 1e-10, "singular values not sorted");
            }
        }
    }

    #[test]
    fn svd_of_unitary_has_unit_singular_values() {
        let mut rng = StdRng::seed_from_u64(22);
        let u = haar_unitary(4, &mut rng);
        let s = svd(&u);
        for x in &s.sigma {
            assert!((x - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn svd_of_rank_deficient_matrix() {
        // Projector |0><0| on C^2 has singular values {1, 0}.
        let p = CMat::from_rows_f64(&[&[1.0, 0.0], &[0.0, 0.0]]);
        let s = svd(&p);
        assert!((s.sigma[0] - 1.0).abs() < 1e-10);
        assert!(s.sigma[1].abs() < 1e-10);
        assert!(s.u.is_unitary(1e-9));
        assert!(s.reconstruct().dist(&p) < 1e-9);
    }

    #[test]
    fn polar_factor_is_unitary_and_reconstructs() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = ginibre(4, &mut rng);
        let (w, p) = polar(&a);
        assert!(w.is_unitary(1e-8));
        assert!(p.is_hermitian(1e-8));
        assert!(w.matmul(&p).dist(&a) < 1e-7);
    }

    #[test]
    fn closest_unitary_to_scaled_unitary_is_that_unitary() {
        let mut rng = StdRng::seed_from_u64(24);
        let u = haar_unitary(4, &mut rng);
        let a = u.scale(c(2.5, 0.0));
        assert!(closest_unitary(&a).dist(&u) < 1e-8);
    }
}
