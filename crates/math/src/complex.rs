//! A self-contained double-precision complex number.
//!
//! The whole workspace is built without external linear-algebra crates, so we
//! provide our own complex scalar. The API mirrors the familiar parts of
//! `num_complex::Complex64`.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` with `f64` components.
///
/// # Examples
///
/// ```
/// use ashn_math::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor for a [`Complex`] value.
///
/// # Examples
///
/// ```
/// use ashn_math::{c, Complex};
/// assert_eq!(c(1.0, -2.0), Complex::new(1.0, -2.0));
/// ```
#[inline]
pub const fn c(re: f64, im: f64) -> Complex {
    Complex { re, im }
}

impl Complex {
    /// The additive identity `0`.
    pub const ZERO: Complex = c(0.0, 0.0);
    /// The multiplicative identity `1`.
    pub const ONE: Complex = c(1.0, 0.0);
    /// The imaginary unit `i`.
    pub const I: Complex = c(0.0, 1.0);

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ashn_math::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - Complex::new(0.0, 2.0)).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{iθ}`, a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²`; cheaper than [`Complex::abs`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Principal argument in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `z` is zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        Self {
            re: self.abs().ln(),
            im: self.arg(),
        }
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Principal value of `z^p` for a real exponent.
    #[inline]
    pub fn powf(self, p: f64) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return Self::ZERO;
        }
        Self::from_polar(self.abs().powf(p), self.arg() * p)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Self { re, im: 0.0 }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        c(-self.re, -self.im)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        c(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        c(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        c(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, o: Complex) -> Complex {
        self * o.inv()
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: f64) -> Complex {
        c(self.re + o, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: f64) -> Complex {
        c(self.re - o, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: f64) -> Complex {
        self.scale(o)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, o: f64) -> Complex {
        c(self.re / o, self.im / o)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        o.scale(self)
    }
}

impl Add<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        c(self + o.re, o.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, o: Complex) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, o: Complex) {
        *self = *self * o;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, o: Complex) {
        *self = *self / o;
    }
}

impl MulAssign<f64> for Complex {
    #[inline]
    fn mul_assign(&mut self, o: f64) {
        self.re *= o;
        self.im *= o;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl Product for Complex {
    fn product<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ONE, |a, b| a * b)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}-{}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-14;

    #[test]
    fn arithmetic_identities() {
        let z = c(1.5, -2.5);
        let w = c(-0.25, 3.0);
        assert!(((z + w) - (w + z)).abs() < EPS);
        assert!(((z * w) - (w * z)).abs() < EPS);
        assert!((z * w / w - z).abs() < EPS);
        assert!((z + (-z)).abs() < EPS);
        assert!((z * z.inv() - Complex::ONE).abs() < EPS);
    }

    #[test]
    fn polar_round_trip() {
        let z = c(-0.7, 0.3);
        let back = Complex::from_polar(z.abs(), z.arg());
        assert!((z - back).abs() < EPS);
    }

    #[test]
    fn exp_and_ln_are_inverse() {
        let z = c(0.3, -1.2);
        assert!((z.exp().ln() - z).abs() < 1e-13);
    }

    #[test]
    fn sqrt_squares_back() {
        let z = c(-4.0, 3.0);
        let s = z.sqrt();
        assert!((s * s - z).abs() < 1e-13);
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..16 {
            let t = k as f64 * 0.41;
            assert!((Complex::cis(t).abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn powf_matches_repeated_multiplication() {
        let z = c(0.8, 0.6);
        let p3 = z.powf(3.0);
        assert!((p3 - z * z * z).abs() < 1e-13);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", c(1.0, -1.0)), "1-1i");
        assert_eq!(format!("{}", Complex::ZERO), "0+0i");
    }
}
