//! Random matrix generation: Ginibre ensembles and Haar-distributed
//! unitaries.

use crate::complex::{c, Complex};
use crate::mat::CMat;
use rand::Rng;

/// Samples one standard normal variate via Box–Muller.
fn randn(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > 1e-300 {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// An `n×n` matrix with i.i.d. standard complex Gaussian entries.
pub fn ginibre(n: usize, rng: &mut impl Rng) -> CMat {
    CMat::from_fn(n, n, |_, _| c(randn(rng), randn(rng)))
}

/// A Hermitian matrix from the Gaussian unitary ensemble (unnormalised).
pub fn random_hermitian(n: usize, rng: &mut impl Rng) -> CMat {
    let g = ginibre(n, rng);
    (&g + &g.adjoint()).scale(c(0.5, 0.0))
}

/// A Haar-distributed `n×n` unitary.
///
/// Implementation: modified Gram–Schmidt orthonormalisation of a Ginibre
/// matrix. MGS produces an `R` factor with positive real diagonal, which is
/// exactly the normalisation required for Haar measure.
///
/// # Examples
///
/// ```
/// use ashn_math::randmat::haar_unitary;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let u = haar_unitary(4, &mut rng);
/// assert!(u.is_unitary(1e-10));
/// ```
pub fn haar_unitary(n: usize, rng: &mut impl Rng) -> CMat {
    let g = ginibre(n, rng);
    let mut q = CMat::zeros(n, n);
    for j in 0..n {
        let mut v = g.col(j);
        for k in 0..j {
            let col = q.col(k);
            let inner: Complex = col.iter().zip(v.iter()).map(|(a, b)| a.conj() * *b).sum();
            for (vi, ci) in v.iter_mut().zip(col.iter()) {
                *vi -= inner * *ci;
            }
        }
        let norm = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        for vi in v.iter_mut() {
            *vi = *vi / norm;
        }
        q.set_col(j, &v);
    }
    q
}

/// A Haar-distributed special unitary (`det = 1`).
pub fn haar_su(n: usize, rng: &mut impl Rng) -> CMat {
    let u = haar_unitary(n, rng);
    let det = u.det();
    let phase = Complex::from_polar(1.0, -det.arg() / n as f64);
    u.scale(phase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn haar_unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 3, 4, 8, 16] {
            assert!(haar_unitary(n, &mut rng).is_unitary(1e-10));
        }
    }

    #[test]
    fn haar_su_has_unit_determinant() {
        let mut rng = StdRng::seed_from_u64(43);
        for n in [2usize, 4, 8] {
            let u = haar_su(n, &mut rng);
            assert!((u.det() - Complex::ONE).abs() < 1e-9);
        }
    }

    #[test]
    fn random_hermitian_is_hermitian() {
        let mut rng = StdRng::seed_from_u64(44);
        assert!(random_hermitian(6, &mut rng).is_hermitian(1e-12));
    }

    #[test]
    fn haar_trace_statistics() {
        // E[|tr U|²] = 1 for Haar unitaries of any dimension.
        let mut rng = StdRng::seed_from_u64(45);
        let samples = 2000;
        let mean: f64 = (0..samples)
            .map(|_| haar_unitary(4, &mut rng).trace().norm_sqr())
            .sum::<f64>()
            / samples as f64;
        assert!(
            (mean - 1.0).abs() < 0.15,
            "E[|tr U|²] = {mean}, expected ≈ 1"
        );
    }
}
