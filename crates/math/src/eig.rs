//! Eigendecompositions for Hermitian and unitary (normal) matrices.
//!
//! All matrices in this project are small (≤ 64×64), so a cyclic complex
//! Jacobi iteration is the method of choice: simple, numerically robust, and
//! it directly produces an orthonormal eigenbasis.

use crate::complex::{c, Complex};
use crate::failpoint;
use crate::mat::CMat;
use std::fmt;

/// A recoverable eigendecomposition failure.
///
/// The fallible `try_*` entry points return this instead of panicking; the
/// synthesis layers map it onto `SynthError::Convergence` so a single bad
/// target degrades instead of killing a batch.
#[derive(Clone, Debug, PartialEq)]
pub enum EigError {
    /// The input was not square (`rows × cols` reported).
    NotSquare { rows: usize, cols: usize },
    /// Simultaneous diagonalisation failed after every mixing retry: the
    /// input is too far from normal. `residual` is the best off-diagonal
    /// norm achieved, relative to the matrix scale.
    NotNormal { residual: f64 },
}

impl fmt::Display for EigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EigError::NotSquare { rows, cols } => {
                write!(f, "eigendecomposition requires a square matrix, got {rows}x{cols}")
            }
            EigError::NotNormal { residual } => write!(
                f,
                "input is not normal enough to diagonalise (best relative off-diagonal residual {residual:.3e})"
            ),
        }
    }
}

impl std::error::Error for EigError {}

/// Result of a Hermitian eigendecomposition `A = V diag(λ) V†`.
#[derive(Clone, Debug)]
pub struct HermitianEig {
    /// Real eigenvalues, in the order matching the columns of `vectors`.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the eigenvectors.
    pub vectors: CMat,
}

/// Result of a unitary (normal) eigendecomposition `W = V diag(w) V†`.
#[derive(Clone, Debug)]
pub struct UnitaryEig {
    /// Unit-modulus eigenvalues.
    pub values: Vec<Complex>,
    /// Unitary matrix whose columns are the eigenvectors.
    pub vectors: CMat,
}

/// Off-diagonal Frobenius norm, the Jacobi convergence measure.
fn off_norm(a: &CMat) -> f64 {
    let n = a.rows();
    let mut s = 0.0;
    for r in 0..n {
        for cc in 0..n {
            if r != cc {
                s += a[(r, cc)].norm_sqr();
            }
        }
    }
    s.sqrt()
}

/// Eigendecomposition of a Hermitian matrix by cyclic complex Jacobi.
///
/// Eigenvalues are returned in ascending order.
///
/// # Panics
///
/// Panics if `a` is not square. The Hermitian part `(A+A†)/2` is used, so
/// slightly non-Hermitian inputs (from accumulated round-off) are tolerated.
///
/// # Examples
///
/// ```
/// use ashn_math::{CMat, eig::eigh};
/// let z = CMat::from_rows_f64(&[&[1.0, 0.0], &[0.0, -1.0]]);
/// let e = eigh(&z);
/// assert!((e.values[0] + 1.0).abs() < 1e-12);
/// assert!((e.values[1] - 1.0).abs() < 1e-12);
/// ```
pub fn eigh(a: &CMat) -> HermitianEig {
    try_eigh(a).expect("eigh requires a square matrix")
}

/// Fallible variant of [`eigh`]: returns [`EigError::NotSquare`] instead of
/// panicking on a non-square input. The Jacobi iteration itself cannot fail
/// on a square input (it simply stops improving), so this is the only error
/// case.
pub fn try_eigh(a: &CMat) -> Result<HermitianEig, EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    // Symmetrize to guard against round-off in the input.
    let mut m = (a + &a.adjoint()).scale(c(0.5, 0.0));
    let mut v = CMat::identity(n);
    let scale = m.frobenius_norm().max(1e-300);
    let tol = 1e-14 * scale;

    for _sweep in 0..100 {
        if off_norm(&m) < tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < tol / (n as f64) {
                    continue;
                }
                let app = m[(p, p)].re;
                let aqq = m[(q, q)].re;
                let phi = apq.arg();
                let theta = 0.5 * (2.0 * apq.abs()).atan2(app - aqq);
                let (s, co) = theta.sin_cos();
                // Unitary rotation U with U[p][p]=c, U[p][q]=-s e^{iφ},
                // U[q][p]=s e^{-iφ}, U[q][q]=c  (2×2 restriction).
                let eip = Complex::cis(phi);
                let ein = eip.conj();
                // Column update: M <- M U.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = mkp * co + mkq * ein * s;
                    m[(k, q)] = -mkp * eip * s + mkq * co;
                }
                // Row update: M <- U† M.
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = mpk * co + mqk * eip * s;
                    m[(q, k)] = -mpk * ein * s + mqk * co;
                }
                // Accumulate eigenvectors: V <- V U.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = vkp * co + vkq * ein * s;
                    v[(k, q)] = -vkp * eip * s + vkq * co;
                }
            }
        }
    }

    let mut idx: Vec<usize> = (0..n).collect();
    let vals: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
    idx.sort_by(|&i, &j| vals[i].partial_cmp(&vals[j]).unwrap());
    let values: Vec<f64> = idx.iter().map(|&i| vals[i]).collect();
    let vectors = CMat::from_fn(n, n, |r, cc| v[(r, idx[cc])]);
    Ok(HermitianEig { values, vectors })
}

/// Eigendecomposition of a unitary (or any normal) matrix.
///
/// Uses simultaneous diagonalisation of the commuting Hermitian pair
/// `(W+W†)/2` and `(W−W†)/2i` through a random real combination; retries
/// with a different combination in the measure-zero failure case.
///
/// # Panics
///
/// Panics if `w` is not square, or if diagonalisation fails after retries
/// (which indicates the input is far from normal).
pub fn eig_unitary(w: &CMat) -> UnitaryEig {
    match try_eig_unitary(w) {
        Ok(e) => e,
        Err(EigError::NotSquare { .. }) => {
            panic!("eig_unitary requires a square matrix")
        }
        Err(EigError::NotNormal { .. }) => {
            panic!("eig_unitary: input is not normal enough to diagonalise")
        }
    }
}

/// Fallible variant of [`eig_unitary`]: returns an [`EigError`] instead of
/// panicking on a non-square or non-normal input.
///
/// Carries the `math::eig::unitary` failpoint (fires as
/// [`EigError::NotNormal`]) so chaos tests can inject decomposition
/// failures here without constructing pathological matrices.
pub fn try_eig_unitary(w: &CMat) -> Result<UnitaryEig, EigError> {
    if !w.is_square() {
        return Err(EigError::NotSquare {
            rows: w.rows(),
            cols: w.cols(),
        });
    }
    if failpoint!("math::eig::unitary") {
        return Err(EigError::NotNormal { residual: f64::NAN });
    }
    let n = w.rows();
    let wh = w.adjoint();
    let h1 = (w + &wh).scale(c(0.5, 0.0));
    let h2 = (w - &wh).scale(c(0.0, -0.5));
    // Deterministic sequence of mixing coefficients; irrational ratios make
    // accidental eigenvalue collisions essentially impossible.
    #[allow(clippy::excessive_precision)]
    let mixes = [
        0.7548776662466927,
        1.3247179572447460,
        0.3819660112501051,
        1.8392867552141612,
        0.5698402909980532,
    ];
    let scale = w.frobenius_norm().max(1e-300);
    let mut best_resid = f64::INFINITY;
    for &t in &mixes {
        let e = try_eigh(&(&h1 + &h2.scale(c(t, 0.0))))?;
        let d = e.vectors.adjoint().matmul(w).matmul(&e.vectors);
        let resid = off_norm(&d) / scale;
        best_resid = best_resid.min(resid);
        if resid < 1e-8 {
            let values = (0..n).map(|i| d[(i, i)]).collect();
            return Ok(UnitaryEig {
                values,
                vectors: e.vectors,
            });
        }
    }
    Err(EigError::NotNormal {
        residual: best_resid,
    })
}

/// Hermitian logarithm of a unitary: returns `H` with `W = exp(iH)` and
/// eigenphases taken in `(−π, π]`.
///
/// # Panics
///
/// Panics under the same conditions as [`eig_unitary`].
pub fn log_unitary(w: &CMat) -> CMat {
    let e = eig_unitary(w);
    log_from_eig(w, &e)
}

/// Fallible variant of [`log_unitary`], failing exactly when
/// [`try_eig_unitary`] does.
pub fn try_log_unitary(w: &CMat) -> Result<CMat, EigError> {
    let e = try_eig_unitary(w)?;
    Ok(log_from_eig(w, &e))
}

fn log_from_eig(w: &CMat, e: &UnitaryEig) -> CMat {
    let n = w.rows();
    let mut h = CMat::zeros(n, n);
    for j in 0..n {
        let phase = e.values[j].arg();
        let col = e.vectors.col(j);
        for r in 0..n {
            for cc in 0..n {
                h[(r, cc)] += col[r] * col[cc].conj() * phase;
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randmat::{haar_unitary, random_hermitian};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reconstruct_h(e: &HermitianEig) -> CMat {
        let d = CMat::diag(&e.values.iter().map(|&v| c(v, 0.0)).collect::<Vec<_>>());
        e.vectors.matmul(&d).matmul(&e.vectors.adjoint())
    }

    #[test]
    fn eigh_diagonal_matrix() {
        let a = CMat::diag(&[c(3.0, 0.0), c(-1.0, 0.0), c(0.5, 0.0)]);
        let e = eigh(&a);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
        assert!(reconstruct_h(&e).dist(&a) < 1e-12);
    }

    #[test]
    fn eigh_random_hermitian_reconstructs() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2usize, 3, 4, 8, 16] {
            let a = random_hermitian(n, &mut rng);
            let e = eigh(&a);
            assert!(e.vectors.is_unitary(1e-10), "eigenvectors not unitary");
            assert!(
                reconstruct_h(&e).dist(&a) < 1e-9 * (n as f64),
                "bad reconstruction at n={n}"
            );
            for w in e.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12, "eigenvalues not sorted");
            }
        }
    }

    #[test]
    fn eigh_handles_degenerate_spectrum() {
        // Pauli X ⊗ I has eigenvalues {−1,−1,1,1}.
        let x = CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let a = x.kron(&CMat::identity(2));
        let e = eigh(&a);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[3] - 1.0).abs() < 1e-12);
        assert!(reconstruct_h(&e).dist(&a) < 1e-10);
    }

    #[test]
    fn eig_unitary_random_reconstructs() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2usize, 4, 8] {
            let u = haar_unitary(n, &mut rng);
            let e = eig_unitary(&u);
            assert!(e.vectors.is_unitary(1e-9));
            for v in &e.values {
                assert!((v.abs() - 1.0).abs() < 1e-9, "eigenvalue off unit circle");
            }
            let d = CMat::diag(&e.values);
            let rec = e.vectors.matmul(&d).matmul(&e.vectors.adjoint());
            assert!(rec.dist(&u) < 1e-8);
        }
    }

    #[test]
    fn eig_unitary_degenerate_swap() {
        // SWAP has eigenvalues {1,1,1,−1}.
        let swap = CMat::from_rows_f64(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
        ]);
        let e = eig_unitary(&swap);
        let mut neg = 0;
        for v in &e.values {
            if (*v + Complex::ONE).abs() < 1e-9 {
                neg += 1;
            }
        }
        assert_eq!(neg, 1);
    }

    #[test]
    fn try_variants_report_errors_instead_of_panicking() {
        let rect = CMat::zeros(2, 3);
        assert_eq!(
            try_eigh(&rect).unwrap_err(),
            EigError::NotSquare { rows: 2, cols: 3 }
        );
        assert!(matches!(
            try_eig_unitary(&rect),
            Err(EigError::NotSquare { .. })
        ));
        // A Jordan block is maximally non-normal: no mixing retry can
        // simultaneously diagonalise its Hermitian and anti-Hermitian parts.
        let jordan = CMat::from_rows_f64(&[&[1.0, 1.0], &[0.0, 1.0]]);
        match try_eig_unitary(&jordan) {
            Err(EigError::NotNormal { residual }) => assert!(residual > 1e-8),
            other => panic!("expected NotNormal, got {other:?}"),
        }
        assert!(try_log_unitary(&jordan).is_err());
        // And the fallible paths agree with the panicking shims on good input.
        let mut rng = StdRng::seed_from_u64(29);
        let u = haar_unitary(4, &mut rng);
        let e = try_eig_unitary(&u).expect("haar unitary is normal");
        assert!(e.vectors.is_unitary(1e-9));
    }

    #[test]
    fn log_unitary_round_trip() {
        let mut rng = StdRng::seed_from_u64(13);
        let u = haar_unitary(4, &mut rng);
        let h = log_unitary(&u);
        assert!(h.is_hermitian(1e-9));
        let back = crate::expm::expm_i_hermitian(&h, 1.0);
        assert!(back.dist(&u) < 1e-8);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn eig_failpoint_fails_once_then_recovers() {
        use crate::fault::{self, FaultMode};
        let _guard = fault::exclusive();
        fault::reset();
        fault::configure("math::eig::unitary", FaultMode::OnNth(1));
        let mut rng = StdRng::seed_from_u64(31);
        let w = haar_unitary(4, &mut rng);
        assert!(matches!(
            try_eig_unitary(&w),
            Err(EigError::NotNormal { .. })
        ));
        assert!(try_eig_unitary(&w).is_ok(), "site must fire only once");
        fault::reset();
    }
}
