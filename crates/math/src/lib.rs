//! # ashn-math
//!
//! Self-contained numerical substrate for the AshN reproduction: complex
//! scalars, dense complex matrices, Hermitian/unitary eigendecompositions,
//! SVD/polar factorisations, Haar-random sampling, and small optimisers.
//!
//! The crate deliberately avoids external linear-algebra dependencies; every
//! routine is tailored to the ≤ 64×64 unitaries that quantum two-, three-,
//! and four-qubit compilation manipulates.
//!
//! ## Example
//!
//! ```
//! use ashn_math::{CMat, eig::eigh, expm::expm_minus_i_hermitian};
//!
//! // Evolve under the Pauli-X Hamiltonian for time π/2: a bit flip up to phase.
//! let x = CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]]);
//! let u = expm_minus_i_hermitian(&x, std::f64::consts::FRAC_PI_2);
//! assert!(u.is_unitary(1e-12));
//! assert!(u[(0, 0)].abs() < 1e-12); // fully off-diagonal
//! let e = eigh(&x);
//! assert!((e.values[0] + 1.0).abs() < 1e-12);
//! ```

pub mod complex;
pub mod eig;
pub mod expm;
pub mod fault;
pub mod mat;
pub mod neldermead;
pub mod randmat;
pub mod roots;
pub mod smat;
pub mod special;
pub mod svd;

pub use complex::{c, Complex};
pub use mat::CMat;
pub use smat::{Mat2, Mat4, SMat};
