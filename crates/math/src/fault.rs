//! Deterministic fault injection for resilience testing.
//!
//! A *failpoint* is a named site in library code that asks the registry
//! "should I fail right now?". Sites are planted with the
//! [`failpoint!`](crate::failpoint) macro, compile to a literal `false`
//! unless the planting crate enables its `fault-injection` feature, and are
//! configured per-test by name via [`configure`]. Every mode is
//! deterministic: probability modes draw from a per-site SplitMix64 stream
//! seeded by the test, so a failing chaos run replays exactly.
//!
//! The registry is process-global. Tests that configure failpoints must
//! serialize on [`exclusive`] and call [`reset`] when done, because cargo
//! runs `#[test]`s concurrently within one process.
//!
//! This module lives in `ashn-math` (the bottom of the crate graph) so that
//! eigendecomposition sites and everything above them can share one
//! registry; `ashn_core::fault` re-exports it under the name the rest of
//! the workspace uses.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// When a configured failpoint fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultMode {
    /// Fire on every call.
    Always,
    /// Fire only on the `n`-th call (1-based) to the site.
    OnNth(u64),
    /// Fire on every `n`-th call (1-based): calls `n, 2n, 3n, …`.
    EveryNth(u64),
    /// Fire with probability `p` per call, drawn from a deterministic
    /// SplitMix64 stream seeded with `seed` (so runs replay exactly).
    Probability { p: f64, seed: u64 },
}

struct SiteState {
    mode: FaultMode,
    calls: u64,
    fired: u64,
    rng: u64,
}

fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_registry() -> MutexGuard<'static, HashMap<String, SiteState>> {
    // A panic while holding the lock (never expected — the critical sections
    // below are panic-free) must not wedge every later chaos test.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// SplitMix64 finalizer, same mixer as `ashn_sim::BatchRunner` seeds.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a 64-bit word (top 53 bits).
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Arms the failpoint `name` with `mode`, resetting its call/fire counters.
pub fn configure(name: &str, mode: FaultMode) {
    let rng = match mode {
        FaultMode::Probability { seed, .. } => mix64(seed ^ 0xa5a5_a5a5_dead_beef),
        _ => 0,
    };
    lock_registry().insert(
        name.to_string(),
        SiteState {
            mode,
            calls: 0,
            fired: 0,
            rng,
        },
    );
}

/// Disarms the failpoint `name` (its counters are discarded).
pub fn clear(name: &str) {
    lock_registry().remove(name);
}

/// Disarms every failpoint. Call at the end of each chaos test.
pub fn reset() {
    lock_registry().clear();
}

/// Asks whether the failpoint `name` should fire on this call, advancing
/// its call counter and (for probability modes) its RNG stream. Unarmed
/// sites always answer `false` at the cost of one hash lookup.
///
/// Library code never calls this directly — it plants
/// [`failpoint!`](crate::failpoint), which compiles the call away unless
/// the `fault-injection` feature is on.
pub fn should_fire(name: &str) -> bool {
    let mut reg = lock_registry();
    let Some(site) = reg.get_mut(name) else {
        return false;
    };
    site.calls += 1;
    let fire = match site.mode {
        FaultMode::Always => true,
        FaultMode::OnNth(n) => site.calls == n,
        FaultMode::EveryNth(n) => n > 0 && site.calls.is_multiple_of(n),
        FaultMode::Probability { p, .. } => {
            site.rng = mix64(site.rng);
            unit_f64(site.rng) < p
        }
    };
    if fire {
        site.fired += 1;
    }
    fire
}

/// How many times the failpoint `name` has been asked since configuration.
pub fn calls(name: &str) -> u64 {
    lock_registry().get(name).map_or(0, |s| s.calls)
}

/// How many times the failpoint `name` has fired since configuration.
pub fn fires(name: &str) -> u64 {
    lock_registry().get(name).map_or(0, |s| s.fired)
}

/// Serializes chaos tests: the registry is process-global, so any test
/// that configures failpoints must hold this guard for its whole body.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Plants a named fault-injection site; evaluates to `true` when the site
/// is armed and elects to fire on this call.
///
/// The `cfg` resolves against the *planting* crate, so each crate that
/// plants sites declares its own `fault-injection` feature forwarding to
/// `ashn-math/fault-injection`. Without the feature the macro is a literal
/// `false` and the site costs nothing.
///
/// ```
/// # use ashn_math::failpoint;
/// fn converge() -> Result<(), String> {
///     if failpoint!("docs::example::site") {
///         return Err("injected fault".into());
///     }
///     Ok(())
/// }
/// assert!(converge().is_ok()); // unarmed (or feature off): never fires
/// ```
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {{
        #[cfg(feature = "fault-injection")]
        let fired = $crate::fault::should_fire($name);
        #[cfg(not(feature = "fault-injection"))]
        let fired = false;
        fired
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_fire_deterministically() {
        let _guard = exclusive();
        reset();

        configure("t::always", FaultMode::Always);
        assert!(should_fire("t::always"));
        assert!(should_fire("t::always"));
        assert_eq!(calls("t::always"), 2);
        assert_eq!(fires("t::always"), 2);

        configure("t::nth", FaultMode::OnNth(3));
        let pattern: Vec<bool> = (0..5).map(|_| should_fire("t::nth")).collect();
        assert_eq!(pattern, [false, false, true, false, false]);

        configure("t::every", FaultMode::EveryNth(2));
        let pattern: Vec<bool> = (0..6).map(|_| should_fire("t::every")).collect();
        assert_eq!(pattern, [false, true, false, true, false, true]);

        // Unarmed sites never fire and count nothing.
        assert!(!should_fire("t::unarmed"));
        assert_eq!(calls("t::unarmed"), 0);

        reset();
        assert!(!should_fire("t::always"));
    }

    #[test]
    fn probability_replays_exactly_and_tracks_rate() {
        let _guard = exclusive();
        reset();

        let sample = |seed: u64| -> Vec<bool> {
            configure("t::prob", FaultMode::Probability { p: 0.25, seed });
            (0..2000).map(|_| should_fire("t::prob")).collect()
        };
        let a = sample(42);
        let b = sample(42);
        assert_eq!(a, b, "same seed must replay the same firing pattern");
        let c = sample(43);
        assert_ne!(a, c, "different seeds should differ");

        let rate = a.iter().filter(|&&f| f).count() as f64 / a.len() as f64;
        assert!((rate - 0.25).abs() < 0.05, "empirical rate {rate} off");
        reset();
    }

    #[test]
    fn macro_consults_registry_when_feature_enabled() {
        let _guard = exclusive();
        reset();
        configure("t::macro", FaultMode::Always);
        // This test module is compiled with the crate's own features; under
        // `--features fault-injection` the macro must consult the registry,
        // otherwise it is a literal `false`.
        let fired = failpoint!("t::macro");
        assert_eq!(fired, cfg!(feature = "fault-injection"));
        reset();
    }
}
