//! Stack-allocated small complex matrices for the synthesis hot path.
//!
//! Every unitary that the two-qubit compilation stack manipulates is 2×2 or
//! 4×4, yet the original [`CMat`] representation heap-allocates a `Vec` for
//! each of them — and the KAK / Makhlin / Nelder–Mead inner loops create
//! thousands per solve. [`SMat<N>`] is a `Copy` const-generic matrix whose
//! kernels the compiler fully unrolls; no allocation ever happens.
//!
//! The numerical kernels ([`SMat::matmul`], [`SMat::eigh`],
//! [`SMat::expm_minus_i_hermitian`], [`SMat::det`]) deliberately mirror the
//! accumulation order of their `CMat` counterparts so the two paths agree to
//! round-off (the differential suite in `crates/math/tests/smat.rs` pins
//! them together at `1e-12`).
//!
//! # Examples
//!
//! ```
//! use ashn_math::{c, CMat, Mat2};
//!
//! let x = Mat2::from_rows([[c(0.0, 0.0), c(1.0, 0.0)], [c(1.0, 0.0), c(0.0, 0.0)]]);
//! assert!((x.matmul(&x) - Mat2::identity()).frobenius_norm() < 1e-15);
//! let heap: CMat = x.into(); // cheap conversion to the dense type
//! assert_eq!(heap.rows(), 2);
//! ```

use crate::complex::{c, Complex};
use crate::mat::CMat;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense `N×N` complex matrix stored on the stack.
#[derive(Clone, Copy, PartialEq)]
pub struct SMat<const N: usize> {
    d: [[Complex; N]; N],
}

/// A stack-allocated 2×2 complex matrix (single-qubit operators).
pub type Mat2 = SMat<2>;

/// A stack-allocated 4×4 complex matrix (two-qubit operators).
pub type Mat4 = SMat<4>;

/// Error returned when converting a [`CMat`] of the wrong shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShapeError {
    /// Rows of the offending matrix.
    pub rows: usize,
    /// Columns of the offending matrix.
    pub cols: usize,
    /// The square dimension that was expected.
    pub expected: usize,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expected a {0}x{0} matrix, got {1}x{2}",
            self.expected, self.rows, self.cols
        )
    }
}

impl std::error::Error for ShapeError {}

impl<const N: usize> SMat<N> {
    /// The zero matrix.
    #[inline]
    pub const fn zeros() -> Self {
        Self {
            d: [[Complex::ZERO; N]; N],
        }
    }

    /// The identity matrix.
    #[inline]
    pub fn identity() -> Self {
        let mut m = Self::zeros();
        for i in 0..N {
            m.d[i][i] = Complex::ONE;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    #[inline]
    pub fn from_fn(mut f: impl FnMut(usize, usize) -> Complex) -> Self {
        let mut m = Self::zeros();
        for (r, row) in m.d.iter_mut().enumerate() {
            for (cc, v) in row.iter_mut().enumerate() {
                *v = f(r, cc);
            }
        }
        m
    }

    /// Builds a matrix from an array of rows.
    #[inline]
    pub const fn from_rows(rows: [[Complex; N]; N]) -> Self {
        Self { d: rows }
    }

    /// Builds a square diagonal matrix from its diagonal entries.
    #[inline]
    pub fn diag(entries: [Complex; N]) -> Self {
        let mut m = Self::zeros();
        for (i, &e) in entries.iter().enumerate() {
            m.d[i][i] = e;
        }
        m
    }

    /// Matrix dimension (rows == cols == `N`).
    #[inline]
    pub const fn dim(&self) -> usize {
        N
    }

    /// Returns column `j` as an array.
    #[inline]
    pub fn col(&self, j: usize) -> [Complex; N] {
        let mut out = [Complex::ZERO; N];
        for (o, row) in out.iter_mut().zip(self.d.iter()) {
            *o = row[j];
        }
        out
    }

    /// Overwrites column `j`.
    #[inline]
    pub fn set_col(&mut self, j: usize, v: &[Complex; N]) {
        for (row, &z) in self.d.iter_mut().zip(v.iter()) {
            row[j] = z;
        }
    }

    /// Applies `f` to every entry.
    #[inline]
    pub fn map(&self, f: impl Fn(Complex) -> Complex) -> Self {
        let mut out = *self;
        for row in out.d.iter_mut() {
            for v in row.iter_mut() {
                *v = f(*v);
            }
        }
        out
    }

    /// Multiplies every entry by a complex scalar.
    #[inline]
    pub fn scale(&self, k: Complex) -> Self {
        self.map(|z| z * k)
    }

    /// Transpose (no conjugation).
    #[inline]
    pub fn transpose(&self) -> Self {
        Self::from_fn(|r, cc| self.d[cc][r])
    }

    /// Entrywise complex conjugate.
    #[inline]
    pub fn conj(&self) -> Self {
        self.map(|z| z.conj())
    }

    /// Conjugate transpose `A†` (alias: [`SMat::dagger`]).
    #[inline]
    pub fn adjoint(&self) -> Self {
        Self::from_fn(|r, cc| self.d[cc][r].conj())
    }

    /// Conjugate transpose `A†`.
    #[inline]
    pub fn dagger(&self) -> Self {
        self.adjoint()
    }

    /// Matrix trace.
    #[inline]
    pub fn trace(&self) -> Complex {
        let mut acc = Complex::ZERO;
        for i in 0..N {
            acc += self.d[i][i];
        }
        acc
    }

    /// Frobenius norm `√Σ|a_ij|²`.
    #[inline]
    pub fn frobenius_norm(&self) -> f64 {
        let mut s = 0.0;
        for row in &self.d {
            for v in row {
                s += v.norm_sqr();
            }
        }
        s.sqrt()
    }

    /// Largest entry modulus.
    #[inline]
    pub fn max_abs(&self) -> f64 {
        let mut best = 0.0f64;
        for row in &self.d {
            for v in row {
                best = best.max(v.abs());
            }
        }
        best
    }

    /// Distance `‖A − B‖_F`.
    #[inline]
    pub fn dist(&self, other: &Self) -> f64 {
        let mut s = 0.0;
        for (ra, rb) in self.d.iter().zip(other.d.iter()) {
            for (a, b) in ra.iter().zip(rb.iter()) {
                s += (*a - *b).norm_sqr();
            }
        }
        s.sqrt()
    }

    /// Fully unrolled matrix product (accumulation over `k` in ascending
    /// order, matching [`CMat::matmul`] to round-off).
    #[inline]
    pub fn matmul(&self, rhs: &Self) -> Self {
        let mut out = Self::zeros();
        for (orow, arow) in out.d.iter_mut().zip(self.d.iter()) {
            for (j, o) in orow.iter_mut().enumerate() {
                let mut acc = Complex::ZERO;
                for (a, brow) in arow.iter().zip(rhs.d.iter()) {
                    acc += *a * brow[j];
                }
                *o = acc;
            }
        }
        out
    }

    /// Matrix–vector product.
    #[inline]
    pub fn mul_vec(&self, v: &[Complex; N]) -> [Complex; N] {
        let mut out = [Complex::ZERO; N];
        for (o, row) in out.iter_mut().zip(self.d.iter()) {
            let mut acc = Complex::ZERO;
            for (a, b) in row.iter().zip(v.iter()) {
                acc += *a * *b;
            }
            *o = acc;
        }
        out
    }

    /// Determinant by in-place LU factorization with partial pivoting
    /// (stack copy; same pivoting rule as [`CMat::det`]).
    pub fn det(&self) -> Complex {
        let mut a = self.d;
        let mut det = Complex::ONE;
        for k in 0..N {
            let (mut piv, mut best) = (k, a[k][k].abs());
            for (i, row) in a.iter().enumerate().skip(k + 1) {
                let v = row[k].abs();
                if v > best {
                    piv = i;
                    best = v;
                }
            }
            if best == 0.0 {
                return Complex::ZERO;
            }
            if piv != k {
                a.swap(piv, k);
                det = -det;
            }
            det *= a[k][k];
            let inv = a[k][k].inv();
            let pivot_row = a[k];
            for row in a.iter_mut().skip(k + 1) {
                let f = row[k] * inv;
                if f == Complex::ZERO {
                    continue;
                }
                for (rj, pj) in row.iter_mut().zip(pivot_row.iter()).skip(k) {
                    let sub = f * *pj;
                    *rj -= sub;
                }
            }
        }
        det
    }

    /// `true` when `‖A†A − I‖ < tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.adjoint().matmul(self).dist(&Self::identity()) < tol
    }

    /// `true` when `‖A − A†‖ < tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.dist(&self.adjoint()) < tol
    }

    /// Hilbert–Schmidt inner product `tr(A† B)`.
    pub fn hs_inner(&self, other: &Self) -> Complex {
        let mut acc = Complex::ZERO;
        for (ra, rb) in self.d.iter().zip(other.d.iter()) {
            for (a, b) in ra.iter().zip(rb.iter()) {
                acc += a.conj() * *b;
            }
        }
        acc
    }

    /// Off-diagonal Frobenius norm (the Jacobi convergence measure).
    fn off_norm(&self) -> f64 {
        let mut s = 0.0;
        for (r, row) in self.d.iter().enumerate() {
            for (cc, v) in row.iter().enumerate() {
                if r != cc {
                    s += v.norm_sqr();
                }
            }
        }
        s.sqrt()
    }

    /// Eigendecomposition of a Hermitian matrix by cyclic complex Jacobi,
    /// entirely on the stack. Eigenvalues ascend; `vectors` columns are the
    /// matching eigenvectors.
    ///
    /// This mirrors [`crate::eig::eigh`] sweep-for-sweep (same symmetrize,
    /// thresholds, and rotation order), so the two agree to round-off.
    pub fn eigh(&self) -> ([f64; N], Self) {
        // Symmetrize to guard against round-off in the input.
        let mut m = (*self + self.adjoint()).scale(c(0.5, 0.0));
        let mut v = Self::identity();
        let scale = m.frobenius_norm().max(1e-300);
        let tol = 1e-14 * scale;

        for _sweep in 0..100 {
            if m.off_norm() < tol {
                break;
            }
            for p in 0..N {
                for q in (p + 1)..N {
                    let apq = m.d[p][q];
                    if apq.abs() < tol / (N as f64) {
                        continue;
                    }
                    let app = m.d[p][p].re;
                    let aqq = m.d[q][q].re;
                    let phi = apq.arg();
                    let theta = 0.5 * (2.0 * apq.abs()).atan2(app - aqq);
                    let (s, co) = theta.sin_cos();
                    let eip = Complex::cis(phi);
                    let ein = eip.conj();
                    // Column update: M <- M U.
                    for k in 0..N {
                        let mkp = m.d[k][p];
                        let mkq = m.d[k][q];
                        m.d[k][p] = mkp * co + mkq * ein * s;
                        m.d[k][q] = -mkp * eip * s + mkq * co;
                    }
                    // Row update: M <- U† M.
                    for k in 0..N {
                        let mpk = m.d[p][k];
                        let mqk = m.d[q][k];
                        m.d[p][k] = mpk * co + mqk * eip * s;
                        m.d[q][k] = -mpk * ein * s + mqk * co;
                    }
                    // Accumulate eigenvectors: V <- V U.
                    for k in 0..N {
                        let vkp = v.d[k][p];
                        let vkq = v.d[k][q];
                        v.d[k][p] = vkp * co + vkq * ein * s;
                        v.d[k][q] = -vkp * eip * s + vkq * co;
                    }
                }
            }
        }

        let mut idx = [0usize; N];
        for (i, x) in idx.iter_mut().enumerate() {
            *x = i;
        }
        let mut vals = [0.0f64; N];
        for (i, x) in vals.iter_mut().enumerate() {
            *x = m.d[i][i].re;
        }
        idx.sort_by(|&i, &j| vals[i].partial_cmp(&vals[j]).unwrap());
        let mut values = [0.0f64; N];
        for (o, &i) in values.iter_mut().zip(idx.iter()) {
            *o = vals[i];
        }
        let vectors = Self::from_fn(|r, cc| v.d[r][idx[cc]]);
        (values, vectors)
    }

    /// `exp(−i·t·H)` for Hermitian `H` — Schrödinger evolution on the
    /// stack, via [`SMat::eigh`] (mirrors
    /// [`crate::expm::expm_minus_i_hermitian`]).
    pub fn expm_minus_i_hermitian(&self, t: f64) -> Self {
        let z = c(0.0, -t);
        let (values, vectors) = self.eigh();
        let mut out = Self::zeros();
        for (j, &l) in values.iter().enumerate() {
            let p = (z * l).exp();
            let col = vectors.col(j);
            for (r, orow) in out.d.iter_mut().enumerate() {
                let a = col[r] * p;
                for (o, cv) in orow.iter_mut().zip(col.iter()) {
                    *o += a * cv.conj();
                }
            }
        }
        out
    }
}

/// Eigendecomposition of a **real symmetric** matrix by cyclic real Jacobi,
/// entirely on the stack: ascending eigenvalues plus the orthogonal
/// eigenvector matrix (columns). Roughly 3× cheaper than the complex
/// [`SMat::eigh`] because every rotation stays in `f64`.
///
/// The caller asserts symmetry; only the upper triangle drives the sweep.
pub fn eigh_real_symmetric<const N: usize>(a: &[[f64; N]; N]) -> ([f64; N], [[f64; N]; N]) {
    let mut m = *a;
    let mut v = [[0.0f64; N]; N];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    let norm_sq: f64 = m.iter().flatten().map(|x| x * x).sum();
    let scale = norm_sq.sqrt().max(1e-300);
    let tol = 1e-14 * scale;

    for _sweep in 0..100 {
        let mut off_sq = 0.0;
        for (r, row) in m.iter().enumerate() {
            for (cc, x) in row.iter().enumerate() {
                if r != cc {
                    off_sq += x * x;
                }
            }
        }
        if off_sq.sqrt() < tol {
            break;
        }
        for p in 0..N {
            for q in (p + 1)..N {
                let apq = m[p][q];
                if apq.abs() < tol / (N as f64) {
                    continue;
                }
                let theta = 0.5 * (2.0 * apq).atan2(m[p][p] - m[q][q]);
                let (s, co) = theta.sin_cos();
                for row in m.iter_mut() {
                    let mkp = row[p];
                    let mkq = row[q];
                    row[p] = mkp * co + mkq * s;
                    row[q] = -mkp * s + mkq * co;
                }
                let mp = m[p];
                let mq = m[q];
                for (x, (&a, &b)) in m[p].iter_mut().zip(mp.iter().zip(mq.iter())) {
                    *x = a * co + b * s;
                }
                for (x, (&a, &b)) in m[q].iter_mut().zip(mp.iter().zip(mq.iter())) {
                    *x = -a * s + b * co;
                }
                for row in v.iter_mut() {
                    let vkp = row[p];
                    let vkq = row[q];
                    row[p] = vkp * co + vkq * s;
                    row[q] = -vkp * s + vkq * co;
                }
            }
        }
    }

    let mut idx = [0usize; N];
    for (i, x) in idx.iter_mut().enumerate() {
        *x = i;
    }
    let mut vals = [0.0f64; N];
    for (i, x) in vals.iter_mut().enumerate() {
        *x = m[i][i];
    }
    idx.sort_by(|&i, &j| vals[i].partial_cmp(&vals[j]).unwrap());
    let mut values = [0.0f64; N];
    for (o, &i) in values.iter_mut().zip(idx.iter()) {
        *o = vals[i];
    }
    let mut vectors = [[0.0f64; N]; N];
    for (orow, vrow) in vectors.iter_mut().zip(v.iter()) {
        for (o, &i) in orow.iter_mut().zip(idx.iter()) {
            *o = vrow[i];
        }
    }
    (values, vectors)
}

/// `exp(−i·t·H)` for a **real symmetric** generator, via
/// [`eigh_real_symmetric`]: the spectral sum reconstructs with one
/// real×complex product per term, about 3× cheaper than the general
/// [`SMat::expm_minus_i_hermitian`]. Agrees with it to `1e-12`.
pub fn expm_minus_i_real_symmetric<const N: usize>(h: &[[f64; N]; N], t: f64) -> SMat<N> {
    let (values, vectors) = eigh_real_symmetric(h);
    let mut phases = [Complex::ZERO; N];
    for (p, &l) in phases.iter_mut().zip(values.iter()) {
        *p = Complex::cis(-t * l);
    }
    let mut out = SMat::<N>::zeros();
    for j in 0..N {
        let p = phases[j];
        for (orow, vrow) in out.d.iter_mut().zip(vectors.iter()) {
            let a = p.scale(vrow[j]);
            for (o, wrow) in orow.iter_mut().zip(vectors.iter()) {
                *o += a.scale(wrow[j]);
            }
        }
    }
    out
}

impl SMat<2> {
    /// Kronecker product `self ⊗ rhs`, the 2⊗2 → 4 case the synthesis stack
    /// uses for local (single-qubit) dressings.
    #[inline]
    pub fn kron(&self, rhs: &Mat2) -> Mat4 {
        let mut out = Mat4::zeros();
        for i in 0..2 {
            for j in 0..2 {
                let a = self.d[i][j];
                for k in 0..2 {
                    for l in 0..2 {
                        out[(2 * i + k, 2 * j + l)] = a * rhs.d[k][l];
                    }
                }
            }
        }
        out
    }
}

impl<const N: usize> Index<(usize, usize)> for SMat<N> {
    type Output = Complex;
    #[inline]
    fn index(&self, (r, cc): (usize, usize)) -> &Complex {
        &self.d[r][cc]
    }
}

impl<const N: usize> IndexMut<(usize, usize)> for SMat<N> {
    #[inline]
    fn index_mut(&mut self, (r, cc): (usize, usize)) -> &mut Complex {
        &mut self.d[r][cc]
    }
}

impl<const N: usize> Add for SMat<N> {
    type Output = SMat<N>;
    #[inline]
    fn add(self, rhs: SMat<N>) -> SMat<N> {
        let mut out = self;
        for (row, rrow) in out.d.iter_mut().zip(rhs.d.iter()) {
            for (v, r) in row.iter_mut().zip(rrow.iter()) {
                *v += *r;
            }
        }
        out
    }
}

impl<const N: usize> Sub for SMat<N> {
    type Output = SMat<N>;
    #[inline]
    fn sub(self, rhs: SMat<N>) -> SMat<N> {
        let mut out = self;
        for (row, rrow) in out.d.iter_mut().zip(rhs.d.iter()) {
            for (v, r) in row.iter_mut().zip(rrow.iter()) {
                *v -= *r;
            }
        }
        out
    }
}

impl<const N: usize> Neg for SMat<N> {
    type Output = SMat<N>;
    #[inline]
    fn neg(self) -> SMat<N> {
        self.map(|z| -z)
    }
}

impl<const N: usize> Mul for SMat<N> {
    type Output = SMat<N>;
    #[inline]
    fn mul(self, rhs: SMat<N>) -> SMat<N> {
        self.matmul(&rhs)
    }
}

impl<const N: usize> Mul<&SMat<N>> for &SMat<N> {
    type Output = SMat<N>;
    #[inline]
    fn mul(self, rhs: &SMat<N>) -> SMat<N> {
        self.matmul(rhs)
    }
}

impl<const N: usize> From<SMat<N>> for CMat {
    fn from(m: SMat<N>) -> CMat {
        CMat::from_fn(N, N, |r, cc| m.d[r][cc])
    }
}

impl<const N: usize> From<&SMat<N>> for CMat {
    fn from(m: &SMat<N>) -> CMat {
        CMat::from_fn(N, N, |r, cc| m.d[r][cc])
    }
}

impl<const N: usize> TryFrom<&CMat> for SMat<N> {
    type Error = ShapeError;

    fn try_from(m: &CMat) -> Result<Self, ShapeError> {
        if m.rows() != N || m.cols() != N {
            return Err(ShapeError {
                rows: m.rows(),
                cols: m.cols(),
                expected: N,
            });
        }
        Ok(Self::from_fn(|r, cc| m[(r, cc)]))
    }
}

impl<const N: usize> fmt::Debug for SMat<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SMat<{N}> [")?;
        for row in &self.d {
            write!(f, "  ")?;
            for z in row {
                write!(f, "({:>9.5},{:>9.5}) ", z.re, z.im)?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl<const N: usize> fmt::Display for SMat<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample2() -> Mat2 {
        Mat2::from_fn(|r, cc| c(r as f64 + 0.5, cc as f64 - 1.0))
    }

    #[test]
    fn identity_is_neutral() {
        let a = sample2();
        assert!(a.matmul(&Mat2::identity()).dist(&a) < 1e-15);
        assert!(Mat2::identity().matmul(&a).dist(&a) < 1e-15);
    }

    #[test]
    fn adjoint_is_involution() {
        let a = sample2();
        assert!(a.adjoint().adjoint().dist(&a) < 1e-15);
        assert_eq!(a.dagger(), a.adjoint());
    }

    #[test]
    fn kron_matches_cmat() {
        let a = sample2();
        let b = Mat2::from_fn(|r, cc| c((r * cc) as f64, 1.0));
        let k = a.kron(&b);
        let kc = CMat::from(a).kron(&CMat::from(b));
        assert!(CMat::from(k).dist(&kc) < 1e-15);
    }

    #[test]
    fn det_of_pauli_x_is_minus_one() {
        let x = Mat2::from_rows([[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]);
        assert!((x.det() + Complex::ONE).abs() < 1e-15);
        assert!(x.is_unitary(1e-14));
        assert!(x.is_hermitian(1e-14));
    }

    #[test]
    fn eigh_of_pauli_z() {
        let z = Mat2::diag([Complex::ONE, c(-1.0, 0.0)]);
        let (vals, vecs) = z.eigh();
        assert!((vals[0] + 1.0).abs() < 1e-13);
        assert!((vals[1] - 1.0).abs() < 1e-13);
        assert!(vecs.is_unitary(1e-13));
    }

    #[test]
    fn expm_of_zero_is_identity() {
        let u = Mat4::zeros().expm_minus_i_hermitian(1.23);
        assert!(u.dist(&Mat4::identity()) < 1e-14);
    }

    #[test]
    fn conversion_round_trip() {
        let a = sample2();
        let heap: CMat = a.into();
        let back = Mat2::try_from(&heap).unwrap();
        assert_eq!(a, back);
        assert!(Mat2::try_from(&CMat::identity(3)).is_err());
    }
}
