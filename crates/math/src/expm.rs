//! Matrix exponentials of (anti-)Hermitian generators.
//!
//! Quantum time evolution only ever needs `exp(−iHτ)` for Hermitian `H`, so
//! we go through the eigendecomposition rather than Padé scaling-and-squaring:
//! the result is exactly unitary up to round-off.

use crate::complex::{c, Complex};
use crate::eig::eigh;
use crate::mat::CMat;

/// Computes `exp(i·t·H)` for Hermitian `H`.
///
/// # Panics
///
/// Panics if `h` is not square.
///
/// # Examples
///
/// ```
/// use ashn_math::{CMat, expm::expm_i_hermitian};
/// use std::f64::consts::PI;
///
/// let x = CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]]);
/// // exp(iπX) = −I.
/// let u = expm_i_hermitian(&x, PI);
/// assert!((u + CMat::identity(2)).frobenius_norm() < 1e-12);
/// ```
pub fn expm_i_hermitian(h: &CMat, t: f64) -> CMat {
    expm_factor_hermitian(h, c(0.0, t))
}

/// Computes `exp(−i·t·H)` for Hermitian `H` — Schrödinger evolution.
pub fn expm_minus_i_hermitian(h: &CMat, t: f64) -> CMat {
    expm_factor_hermitian(h, c(0.0, -t))
}

/// Computes `exp(z·H)` for Hermitian `H` and an arbitrary complex factor `z`.
///
/// # Panics
///
/// Panics if `h` is not square.
pub fn expm_factor_hermitian(h: &CMat, z: Complex) -> CMat {
    let e = eigh(h);
    let n = h.rows();
    let phases: Vec<Complex> = e.values.iter().map(|&l| (z * l).exp()).collect();
    let mut out = CMat::zeros(n, n);
    for (j, p) in phases.iter().copied().enumerate() {
        let col = e.vectors.col(j);
        for r in 0..n {
            let a = col[r] * p;
            for cc in 0..n {
                out[(r, cc)] += a * col[cc].conj();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randmat::random_hermitian;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_of_zero_is_identity() {
        let z = CMat::zeros(3, 3);
        assert!(expm_i_hermitian(&z, 1.23).dist(&CMat::identity(3)) < 1e-14);
    }

    #[test]
    fn result_is_unitary() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [2usize, 4, 8] {
            let h = random_hermitian(n, &mut rng);
            let u = expm_minus_i_hermitian(&h, 0.7);
            assert!(u.is_unitary(1e-10));
        }
    }

    #[test]
    fn group_property_same_generator() {
        let mut rng = StdRng::seed_from_u64(5);
        let h = random_hermitian(4, &mut rng);
        let u1 = expm_minus_i_hermitian(&h, 0.3);
        let u2 = expm_minus_i_hermitian(&h, 0.5);
        let u3 = expm_minus_i_hermitian(&h, 0.8);
        assert!(u1.matmul(&u2).dist(&u3) < 1e-10);
    }

    #[test]
    fn inverse_is_negative_time() {
        let mut rng = StdRng::seed_from_u64(9);
        let h = random_hermitian(4, &mut rng);
        let u = expm_minus_i_hermitian(&h, 0.9);
        let v = expm_minus_i_hermitian(&h, -0.9);
        assert!(u.matmul(&v).dist(&CMat::identity(4)) < 1e-10);
    }

    #[test]
    fn pauli_z_rotation_phases() {
        let z = CMat::from_rows_f64(&[&[1.0, 0.0], &[0.0, -1.0]]);
        let u = expm_minus_i_hermitian(&z, 0.4);
        assert!((u[(0, 0)] - Complex::cis(-0.4)).abs() < 1e-13);
        assert!((u[(1, 1)] - Complex::cis(0.4)).abs() < 1e-13);
    }
}
