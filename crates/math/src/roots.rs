//! Scalar and small-system root finding.

/// Finds a root of `f` in `[a, b]` by bisection, requiring a sign change.
///
/// Returns `None` when `f(a)` and `f(b)` have the same sign.
pub fn bisect(f: impl Fn(f64) -> f64, a: f64, b: f64, iters: usize) -> Option<f64> {
    let (mut lo, mut hi) = (a, b);
    let (mut flo, fhi) = (f(lo), f(hi));
    if flo == 0.0 {
        return Some(lo);
    }
    if fhi == 0.0 {
        return Some(hi);
    }
    if flo.signum() == fhi.signum() {
        return None;
    }
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if fm == 0.0 {
            return Some(mid);
        }
        if fm.signum() == flo.signum() {
            lo = mid;
            flo = fm;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Damped Newton iteration for a two-dimensional system `f(x) = target`,
/// with a numerically estimated Jacobian.
///
/// Returns the solution when the residual (Euclidean norm) drops below
/// `tol`; otherwise `None`. Steps that increase the residual are halved up
/// to ten times before giving up on the step.
pub fn newton2(
    f: impl Fn([f64; 2]) -> [f64; 2],
    target: [f64; 2],
    start: [f64; 2],
    bounds: [[f64; 2]; 2],
    tol: f64,
    max_iter: usize,
) -> Option<[f64; 2]> {
    let clamp = |x: [f64; 2]| {
        [
            x[0].clamp(bounds[0][0], bounds[0][1]),
            x[1].clamp(bounds[1][0], bounds[1][1]),
        ]
    };
    let resid = |x: [f64; 2]| {
        let v = f(x);
        [v[0] - target[0], v[1] - target[1]]
    };
    let norm = |r: [f64; 2]| (r[0] * r[0] + r[1] * r[1]).sqrt();

    let mut x = clamp(start);
    let mut r = resid(x);
    for _ in 0..max_iter {
        let rn = norm(r);
        if rn < tol {
            return Some(x);
        }
        // Numerical Jacobian (forward differences scaled to the variable).
        let mut jac = [[0.0f64; 2]; 2];
        for j in 0..2 {
            let h = 1e-7 * (1.0 + x[j].abs());
            let mut xp = x;
            xp[j] += h;
            let rp = resid(clamp(xp));
            jac[0][j] = (rp[0] - r[0]) / h;
            jac[1][j] = (rp[1] - r[1]) / h;
        }
        let det = jac[0][0] * jac[1][1] - jac[0][1] * jac[1][0];
        if det.abs() < 1e-300 {
            return None;
        }
        let dx = [
            -(jac[1][1] * r[0] - jac[0][1] * r[1]) / det,
            -(-jac[1][0] * r[0] + jac[0][0] * r[1]) / det,
        ];
        // Damping: halve the step until the residual decreases.
        let mut lambda = 1.0;
        let mut improved = false;
        for _ in 0..10 {
            let cand = clamp([x[0] + lambda * dx[0], x[1] + lambda * dx[1]]);
            let rc = resid(cand);
            if norm(rc) < rn {
                x = cand;
                r = rc;
                improved = true;
                break;
            }
            lambda *= 0.5;
        }
        if !improved {
            return None;
        }
    }
    if norm(resid(x)) < tol {
        Some(x)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 80).unwrap();
        assert!((r - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bisect_rejects_no_sign_change() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 50).is_none());
    }

    #[test]
    fn newton2_solves_coupled_system() {
        // Solve x² + y² = 5, x·y = 2 → (x, y) = (2, 1) (among others).
        let f = |v: [f64; 2]| [v[0] * v[0] + v[1] * v[1], v[0] * v[1]];
        let sol = newton2(
            f,
            [5.0, 2.0],
            [1.5, 0.5],
            [[0.0, 10.0], [0.0, 10.0]],
            1e-12,
            100,
        )
        .expect("should converge");
        let got = f(sol);
        assert!((got[0] - 5.0).abs() < 1e-10);
        assert!((got[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn newton2_respects_bounds() {
        let f = |v: [f64; 2]| [v[0], v[1]];
        // Target outside the box: must fail rather than wander off.
        let sol = newton2(
            f,
            [5.0, 5.0],
            [0.5, 0.5],
            [[0.0, 1.0], [0.0, 1.0]],
            1e-9,
            50,
        );
        assert!(sol.is_none());
    }
}
