//! Dense, row-major complex matrices.
//!
//! Everything in this workspace manipulates unitaries of dimension ≤ 64, so a
//! simple dense representation with `O(n³)` algorithms is both sufficient and
//! easy to audit.

use crate::complex::{c, Complex};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense complex matrix stored in row-major order.
///
/// # Examples
///
/// ```
/// use ashn_math::{CMat, Complex};
///
/// let x = CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]]);
/// let id = &x * &x;
/// assert!((id - CMat::identity(2)).frobenius_norm() < 1e-15);
/// ```
#[derive(Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMat {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n×n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for cc in 0..cols {
                m[(r, cc)] = f(r, cc);
            }
        }
        m
    }

    /// Builds a matrix from complex rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[Complex]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a real matrix from `f64` rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths or `rows` is empty.
    pub fn from_rows_f64(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Self::from_fn(rows.len(), cols, |r, cc| c(rows[r][cc], 0.0))
    }

    /// Builds a square diagonal matrix from its diagonal entries.
    pub fn diag(entries: &[Complex]) -> Self {
        let n = entries.len();
        let mut m = Self::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, cc| self[(cc, r)])
    }

    /// Entrywise complex conjugate.
    pub fn conj(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Conjugate transpose `A†`.
    pub fn adjoint(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, cc| self[(cc, r)].conj())
    }

    /// Applies `f` to every entry.
    pub fn map(&self, f: impl Fn(Complex) -> Complex) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| f(z)).collect(),
        }
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale(&self, k: Complex) -> Self {
        self.map(|z| z * k)
    }

    /// Matrix trace.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert!(self.is_square(), "trace of a non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `√Σ|a_ij|²`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry modulus.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Matrix product, with shape checking.
    ///
    /// # Panics
    ///
    /// Panics on incompatible shapes.
    pub fn matmul(&self, rhs: &CMat) -> CMat {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}×{} times {}×{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = CMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex::ZERO {
                    continue;
                }
                let row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let dst = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (d, &b) in dst.iter_mut().zip(row.iter()) {
                    *d += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.cols, "mul_vec shape mismatch");
        let mut out = vec![Complex::ZERO; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = Complex::ZERO;
            for (a, b) in row.iter().zip(v.iter()) {
                acc += *a * *b;
            }
            *o = acc;
        }
        out
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMat) -> CMat {
        let mut out = CMat::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == Complex::ZERO {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Returns column `j` as a vector.
    pub fn col(&self, j: usize) -> Vec<Complex> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns row `i` as a vector.
    pub fn row(&self, i: usize) -> Vec<Complex> {
        self.data[i * self.cols..(i + 1) * self.cols].to_vec()
    }

    /// Overwrites column `j`.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != self.rows()`.
    pub fn set_col(&mut self, j: usize, v: &[Complex]) {
        assert_eq!(v.len(), self.rows, "set_col length mismatch");
        for (i, &z) in v.iter().enumerate() {
            self[(i, j)] = z;
        }
    }

    /// Extracts the contiguous block with top-left corner `(r0, c0)`.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> CMat {
        CMat::from_fn(rows, cols, |r, cc| self[(r0 + r, c0 + cc)])
    }

    /// Writes `b` into the block with top-left corner `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics when the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, b: &CMat) {
        assert!(r0 + b.rows <= self.rows && c0 + b.cols <= self.cols);
        for r in 0..b.rows {
            for cc in 0..b.cols {
                self[(r0 + r, c0 + cc)] = b[(r, cc)];
            }
        }
    }

    /// Determinant by LU factorization with partial pivoting.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn det(&self) -> Complex {
        assert!(self.is_square(), "determinant of a non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut det = Complex::ONE;
        for k in 0..n {
            // Pivot.
            let (mut piv, mut best) = (k, a[(k, k)].abs());
            for i in k + 1..n {
                let v = a[(i, k)].abs();
                if v > best {
                    piv = i;
                    best = v;
                }
            }
            if best == 0.0 {
                return Complex::ZERO;
            }
            if piv != k {
                for j in 0..n {
                    let tmp = a[(k, j)];
                    a[(k, j)] = a[(piv, j)];
                    a[(piv, j)] = tmp;
                }
                det = -det;
            }
            det *= a[(k, k)];
            let inv = a[(k, k)].inv();
            for i in k + 1..n {
                let f = a[(i, k)] * inv;
                if f == Complex::ZERO {
                    continue;
                }
                for j in k..n {
                    let sub = f * a[(k, j)];
                    a[(i, j)] -= sub;
                }
            }
        }
        det
    }

    /// Solves `A x = b` by Gaussian elimination with partial pivoting.
    ///
    /// Returns `None` when the matrix is numerically singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != self.rows()`.
    pub fn solve(&self, b: &[Complex]) -> Option<Vec<Complex>> {
        assert!(self.is_square());
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.to_vec();
        for k in 0..n {
            let (mut piv, mut best) = (k, a[(k, k)].abs());
            for i in k + 1..n {
                let v = a[(i, k)].abs();
                if v > best {
                    piv = i;
                    best = v;
                }
            }
            if best < 1e-300 {
                return None;
            }
            if piv != k {
                for j in 0..n {
                    let tmp = a[(k, j)];
                    a[(k, j)] = a[(piv, j)];
                    a[(piv, j)] = tmp;
                }
                x.swap(piv, k);
            }
            let inv = a[(k, k)].inv();
            for i in k + 1..n {
                let f = a[(i, k)] * inv;
                if f == Complex::ZERO {
                    continue;
                }
                for j in k..n {
                    let sub = f * a[(k, j)];
                    a[(i, j)] -= sub;
                }
                let sub = f * x[k];
                x[i] -= sub;
            }
        }
        for k in (0..n).rev() {
            let mut acc = x[k];
            for j in k + 1..n {
                acc -= a[(k, j)] * x[j];
            }
            x[k] = acc / a[(k, k)];
        }
        Some(x)
    }

    /// Inverse of a unitary matrix, i.e. its adjoint.
    ///
    /// This is exact only for unitary inputs; use [`CMat::solve`] otherwise.
    pub fn unitary_inverse(&self) -> CMat {
        self.adjoint()
    }

    /// Distance `‖A − B‖_F`.
    pub fn dist(&self, other: &CMat) -> f64 {
        (self - other).frobenius_norm()
    }

    /// `true` when `‖A†A − I‖ < tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let n = self.rows;
        (self.adjoint().matmul(self) - CMat::identity(n)).frobenius_norm() < tol
    }

    /// `true` when `‖A − A†‖ < tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && (self - &self.adjoint()).frobenius_norm() < tol
    }

    /// Conjugation `U · self · U†`.
    ///
    /// # Panics
    ///
    /// Panics on incompatible shapes.
    pub fn conjugate_by(&self, u: &CMat) -> CMat {
        u.matmul(self).matmul(&u.adjoint())
    }

    /// Hilbert–Schmidt inner product `tr(A† B)`.
    pub fn hs_inner(&self, other: &CMat) -> Complex {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = Complex;
    #[inline]
    fn index(&self, (r, cc): (usize, usize)) -> &Complex {
        debug_assert!(r < self.rows && cc < self.cols);
        &self.data[r * self.cols + cc]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (r, cc): (usize, usize)) -> &mut Complex {
        debug_assert!(r < self.rows && cc < self.cols);
        &mut self.data[r * self.cols + cc]
    }
}

macro_rules! impl_binop {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl $trait<&CMat> for &CMat {
            type Output = CMat;
            fn $fn(self, rhs: &CMat) -> CMat {
                assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
                CMat {
                    rows: self.rows,
                    cols: self.cols,
                    data: self
                        .data
                        .iter()
                        .zip(rhs.data.iter())
                        .map(|(a, b)| *a $op *b)
                        .collect(),
                }
            }
        }
        impl $trait<CMat> for CMat {
            type Output = CMat;
            fn $fn(self, rhs: CMat) -> CMat {
                (&self).$fn(&rhs)
            }
        }
        impl $trait<&CMat> for CMat {
            type Output = CMat;
            fn $fn(self, rhs: &CMat) -> CMat {
                (&self).$fn(rhs)
            }
        }
        impl $trait<CMat> for &CMat {
            type Output = CMat;
            fn $fn(self, rhs: CMat) -> CMat {
                self.$fn(&rhs)
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);

impl Mul<&CMat> for &CMat {
    type Output = CMat;
    fn mul(self, rhs: &CMat) -> CMat {
        self.matmul(rhs)
    }
}
impl Mul<CMat> for CMat {
    type Output = CMat;
    fn mul(self, rhs: CMat) -> CMat {
        self.matmul(&rhs)
    }
}
impl Mul<&CMat> for CMat {
    type Output = CMat;
    fn mul(self, rhs: &CMat) -> CMat {
        self.matmul(rhs)
    }
}
impl Mul<CMat> for &CMat {
    type Output = CMat;
    fn mul(self, rhs: CMat) -> CMat {
        self.matmul(&rhs)
    }
}

impl Mul<Complex> for &CMat {
    type Output = CMat;
    fn mul(self, k: Complex) -> CMat {
        self.scale(k)
    }
}

impl Mul<f64> for &CMat {
    type Output = CMat;
    fn mul(self, k: f64) -> CMat {
        self.scale(c(k, 0.0))
    }
}

impl Neg for &CMat {
    type Output = CMat;
    fn neg(self) -> CMat {
        self.map(|z| -z)
    }
}
impl Neg for CMat {
    type Output = CMat;
    fn neg(self) -> CMat {
        self.map(|z| -z)
    }
}

impl fmt::Debug for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMat {}×{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for cc in 0..self.cols {
                let z = self[(r, cc)];
                write!(f, "({:>9.5},{:>9.5}) ", z.re, z.im)?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CMat {
        CMat::from_fn(3, 3, |r, cc| c(r as f64 + 0.5, cc as f64 - 1.0))
    }

    #[test]
    fn identity_is_neutral() {
        let a = sample();
        let id = CMat::identity(3);
        assert!((a.matmul(&id)).dist(&a) < 1e-14);
        assert!((id.matmul(&a)).dist(&a) < 1e-14);
    }

    #[test]
    fn adjoint_is_involution() {
        let a = sample();
        assert!(a.adjoint().adjoint().dist(&a) < 1e-15);
    }

    #[test]
    fn trace_of_product_is_cyclic() {
        let a = sample();
        let b = CMat::from_fn(3, 3, |r, cc| c((r * cc) as f64, 1.0));
        let t1 = a.matmul(&b).trace();
        let t2 = b.matmul(&a).trace();
        assert!((t1 - t2).abs() < 1e-12);
    }

    #[test]
    fn kron_dimensions_and_values() {
        let a = CMat::from_rows_f64(&[&[1.0, 2.0]]);
        let b = CMat::from_rows_f64(&[&[3.0], &[4.0]]);
        let k = a.kron(&b);
        assert_eq!((k.rows(), k.cols()), (2, 2));
        assert_eq!(k[(0, 0)], c(3.0, 0.0));
        assert_eq!(k[(1, 1)], c(8.0, 0.0));
    }

    #[test]
    fn det_of_triangular_is_diagonal_product() {
        let a = CMat::from_rows(&[&[c(2.0, 0.0), c(5.0, 1.0)], &[Complex::ZERO, c(0.0, 3.0)]]);
        assert!((a.det() - c(0.0, 6.0)).abs() < 1e-13);
    }

    #[test]
    fn solve_recovers_input() {
        let a = CMat::from_rows(&[
            &[c(2.0, 1.0), c(1.0, 0.0), c(0.0, -1.0)],
            &[c(0.0, 1.0), c(3.0, 0.0), c(1.0, 1.0)],
            &[c(1.0, 0.0), c(-1.0, 2.0), c(2.0, 0.0)],
        ]);
        let x = vec![c(1.0, -1.0), c(0.5, 2.0), c(-3.0, 0.25)];
        let b = a.mul_vec(&x);
        let got = a.solve(&b).expect("nonsingular");
        for (g, e) in got.iter().zip(x.iter()) {
            assert!((*g - *e).abs() < 1e-11);
        }
    }

    #[test]
    fn block_round_trip() {
        let a = sample();
        let b = a.block(1, 0, 2, 2);
        let mut z = CMat::zeros(3, 3);
        z.set_block(1, 0, &b);
        assert_eq!(z[(1, 0)], a[(1, 0)]);
        assert_eq!(z[(2, 1)], a[(2, 1)]);
        assert_eq!(z[(0, 0)], Complex::ZERO);
    }

    #[test]
    fn pauli_x_is_unitary_and_hermitian() {
        let x = CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(x.is_unitary(1e-14));
        assert!(x.is_hermitian(1e-14));
        assert!((x.det() + Complex::ONE).abs() < 1e-14);
    }
}
