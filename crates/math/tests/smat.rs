//! Differential suite holding the stack-allocated [`SMat`] kernels against
//! the dense [`CMat`] reference: 200+ random 2×2/4×4 operations compared at
//! `1e-12` (matmul, kron, dagger, transpose, add/sub/scale, trace,
//! Frobenius norm, determinant, matrix–vector products, eigendecomposition
//! and the Hermitian exponential — the solve-free set the synthesis stack
//! uses).

use ashn_math::randmat::{haar_unitary, random_hermitian};
use ashn_math::{c, CMat, Complex, Mat2, Mat4, SMat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-12;

fn random_cmat(n: usize, rng: &mut StdRng) -> CMat {
    CMat::from_fn(n, n, |_, _| {
        c(2.0 * rng.gen::<f64>() - 1.0, 2.0 * rng.gen::<f64>() - 1.0)
    })
}

fn check_pair<const N: usize>(a: &CMat, b: &CMat, label: &str) {
    let sa = SMat::<N>::try_from(a).unwrap();
    let sb = SMat::<N>::try_from(b).unwrap();

    // Binary operations.
    assert!(
        CMat::from(sa.matmul(&sb)).dist(&a.matmul(b)) < TOL,
        "{label}: matmul"
    );
    assert!(CMat::from(sa + sb).dist(&(a + b)) < TOL, "{label}: add");
    assert!(CMat::from(sa - sb).dist(&(a - b)) < TOL, "{label}: sub");

    // Unary operations.
    assert!(
        CMat::from(sa.adjoint()).dist(&a.adjoint()) < TOL,
        "{label}: dagger"
    );
    assert!(
        CMat::from(sa.transpose()).dist(&a.transpose()) < TOL,
        "{label}: transpose"
    );
    assert!(CMat::from(sa.conj()).dist(&a.conj()) < TOL, "{label}: conj");
    assert!(CMat::from(-sa).dist(&(-a)) < TOL, "{label}: neg");
    let k = c(0.3, -0.7);
    assert!(
        CMat::from(sa.scale(k)).dist(&a.scale(k)) < TOL,
        "{label}: scale"
    );

    // Scalar reductions.
    assert!((sa.trace() - a.trace()).abs() < TOL, "{label}: trace");
    assert!(
        (sa.frobenius_norm() - a.frobenius_norm()).abs() < TOL,
        "{label}: frobenius"
    );
    assert!((sa.max_abs() - a.max_abs()).abs() < TOL, "{label}: max_abs");
    assert!((sa.det() - a.det()).abs() < TOL, "{label}: det");
    assert!(
        (sa.hs_inner(&sb) - a.hs_inner(b)).abs() < TOL,
        "{label}: hs_inner"
    );
    assert!((sa.dist(&sb) - a.dist(b)).abs() < TOL, "{label}: dist");
}

fn check_mul_vec<const N: usize>(a: &CMat, rng: &mut StdRng) {
    let sa = SMat::<N>::try_from(a).unwrap();
    let mut v = [Complex::ZERO; N];
    for x in v.iter_mut() {
        *x = c(rng.gen::<f64>(), rng.gen::<f64>());
    }
    let got = sa.mul_vec(&v);
    let want = a.mul_vec(&v);
    for (g, w) in got.iter().zip(want.iter()) {
        assert!((*g - *w).abs() < TOL, "mul_vec mismatch");
    }
}

#[test]
fn random_ops_match_cmat_2x2_and_4x4() {
    // 60 pairs × 2 sizes × 12 checked ops ≫ 200 differential cases.
    let mut rng = StdRng::seed_from_u64(7001);
    for i in 0..60 {
        let (a2, b2) = (random_cmat(2, &mut rng), random_cmat(2, &mut rng));
        check_pair::<2>(&a2, &b2, &format!("2x2 pair {i}"));
        check_mul_vec::<2>(&a2, &mut rng);
        let (a4, b4) = (random_cmat(4, &mut rng), random_cmat(4, &mut rng));
        check_pair::<4>(&a4, &b4, &format!("4x4 pair {i}"));
        check_mul_vec::<4>(&a4, &mut rng);
    }
}

#[test]
fn kron_matches_cmat_over_random_pairs() {
    let mut rng = StdRng::seed_from_u64(7002);
    for _ in 0..50 {
        let a = random_cmat(2, &mut rng);
        let b = random_cmat(2, &mut rng);
        let sa = Mat2::try_from(&a).unwrap();
        let sb = Mat2::try_from(&b).unwrap();
        assert!(CMat::from(sa.kron(&sb)).dist(&a.kron(&b)) < TOL);
    }
}

#[test]
fn unitary_det_and_checks_match() {
    let mut rng = StdRng::seed_from_u64(7003);
    for _ in 0..25 {
        let u = haar_unitary(4, &mut rng);
        let su = Mat4::try_from(&u).unwrap();
        assert!(su.is_unitary(1e-10));
        assert!((su.det() - u.det()).abs() < TOL);
        assert!(!su.is_hermitian(1e-10) || u.is_hermitian(1e-10));
    }
}

#[test]
fn eigh_matches_cmat_eigh() {
    let mut rng = StdRng::seed_from_u64(7004);
    for _ in 0..30 {
        let h = random_hermitian(4, &mut rng);
        let sh = Mat4::try_from(&h).unwrap();
        let (vals, vecs) = sh.eigh();
        let reference = ashn_math::eig::eigh(&h);
        for (got, want) in vals.iter().zip(reference.values.iter()) {
            assert!((got - want).abs() < TOL, "eigenvalue mismatch");
        }
        assert!(
            CMat::from(vecs).dist(&reference.vectors) < TOL,
            "eigenvector mismatch"
        );
        // And the decomposition reconstructs.
        let d = Mat4::diag([
            c(vals[0], 0.0),
            c(vals[1], 0.0),
            c(vals[2], 0.0),
            c(vals[3], 0.0),
        ]);
        assert!(vecs.matmul(&d).matmul(&vecs.adjoint()).dist(&sh) < 1e-9);
    }
}

#[test]
fn expm_matches_cmat_expm() {
    let mut rng = StdRng::seed_from_u64(7005);
    for _ in 0..30 {
        let h = random_hermitian(4, &mut rng);
        let t = 3.0 * rng.gen::<f64>() - 1.5;
        let sh = Mat4::try_from(&h).unwrap();
        let fast = sh.expm_minus_i_hermitian(t);
        let reference = ashn_math::expm::expm_minus_i_hermitian(&h, t);
        assert!(CMat::from(fast).dist(&reference) < TOL, "expm mismatch");
        assert!(fast.is_unitary(1e-10));
    }
}

#[test]
fn conversions_are_lossless_and_shape_checked() {
    let mut rng = StdRng::seed_from_u64(7006);
    let a = random_cmat(4, &mut rng);
    let s = Mat4::try_from(&a).unwrap();
    assert_eq!(CMat::from(s).as_slice(), a.as_slice());
    assert!(Mat2::try_from(&a).is_err(), "4x4 into Mat2 must fail");
    assert!(Mat4::try_from(&CMat::zeros(4, 3)).is_err(), "non-square");
    let err = Mat4::try_from(&CMat::identity(2)).unwrap_err();
    assert_eq!((err.rows, err.cols, err.expected), (2, 2, 4));
}
