//! Property-based tests for the numerical substrate.

use ashn_math::eig::{eig_unitary, eigh};
use ashn_math::expm::expm_minus_i_hermitian;
use ashn_math::randmat::{ginibre, haar_unitary, random_hermitian};
use ashn_math::special::{sinc, sinc_inv};
use ashn_math::svd::{polar, svd};
use ashn_math::{c, CMat, Complex};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn finite() -> impl Strategy<Value = f64> {
    -1e3..1e3f64
}

proptest! {
    #[test]
    fn complex_field_axioms(a in finite(), b in finite(), x in finite(), y in finite()) {
        let z = c(a, b);
        let w = c(x, y);
        let scale = z.abs().max(w.abs()).max(1.0);
        // Distributivity.
        let lhs = z * (w + c(1.0, 1.0));
        let rhs = z * w + z * c(1.0, 1.0);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * scale * scale);
        // Conjugation is a ring homomorphism.
        prop_assert!(((z * w).conj() - z.conj() * w.conj()).abs() <= 1e-9 * scale * scale);
        prop_assert!(((z + w).conj() - (z.conj() + w.conj())).abs() <= 1e-9 * scale);
    }

    #[test]
    fn modulus_is_multiplicative(a in finite(), b in finite(), x in finite(), y in finite()) {
        let z = c(a, b);
        let w = c(x, y);
        prop_assert!(((z * w).abs() - z.abs() * w.abs()).abs() <= 1e-6 * (1.0 + z.abs() * w.abs()));
    }

    #[test]
    fn sinc_inv_inverts_sinc(y in 0.0..1.0f64) {
        let x = sinc_inv(y);
        prop_assert!((sinc(x) - y).abs() < 1e-10);
    }

    #[test]
    fn haar_unitaries_are_unitary(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2 + (seed % 5) as usize;
        let u = haar_unitary(n, &mut rng);
        prop_assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn eigh_reconstructs(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2 + (seed % 4) as usize;
        let h = random_hermitian(n, &mut rng);
        let e = eigh(&h);
        let d = CMat::diag(&e.values.iter().map(|&v| c(v, 0.0)).collect::<Vec<_>>());
        let rec = e.vectors.matmul(&d).matmul(&e.vectors.adjoint());
        prop_assert!(rec.dist(&h) < 1e-8 * (1.0 + h.frobenius_norm()));
    }

    #[test]
    fn svd_reconstructs_and_is_sorted(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2 + (seed % 4) as usize;
        let a = ginibre(n, &mut rng);
        let s = svd(&a);
        prop_assert!(s.reconstruct().dist(&a) < 1e-6 * (1.0 + a.frobenius_norm()));
        for w in s.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn polar_unitary_factor(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = ginibre(4, &mut rng);
        let (w, p) = polar(&a);
        prop_assert!(w.is_unitary(1e-7));
        prop_assert!(p.is_hermitian(1e-7));
        prop_assert!(w.matmul(&p).dist(&a) < 1e-6 * (1.0 + a.frobenius_norm()));
    }

    #[test]
    fn evolution_is_unitary_and_composes(seed in 0u64..100, t in 0.01..2.0f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random_hermitian(4, &mut rng);
        let u = expm_minus_i_hermitian(&h, t);
        prop_assert!(u.is_unitary(1e-9));
        let u2 = expm_minus_i_hermitian(&h, 2.0 * t);
        prop_assert!(u.matmul(&u).dist(&u2) < 1e-8);
    }

    #[test]
    fn unitary_eigenvalues_on_circle(seed in 0u64..150) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2 + (seed % 3) as usize;
        let u = haar_unitary(n, &mut rng);
        let e = eig_unitary(&u);
        for v in &e.values {
            prop_assert!((v.abs() - 1.0).abs() < 1e-8);
        }
        // The product of the eigenvalues is the determinant.
        let prod: Complex = e.values.iter().copied().product();
        prop_assert!((prod - u.det()).abs() < 1e-7);
    }

    #[test]
    fn det_is_multiplicative(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = ginibre(3, &mut rng);
        let b = ginibre(3, &mut rng);
        let lhs = a.matmul(&b).det();
        let rhs = a.det() * b.det();
        prop_assert!((lhs - rhs).abs() < 1e-7 * (1.0 + rhs.abs()));
    }
}
