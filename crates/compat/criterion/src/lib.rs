//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `Criterion::bench_function`, benchmark groups, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Timing is a straightforward
//! warmup + timed-batch mean (no statistics, plots, or baselines); good
//! enough for relative comparisons in an offline environment.
//!
//! Passing `--test` to a bench binary (`cargo bench --bench pipeline --
//! --test`, mirroring real criterion) runs every benchmark body exactly
//! once without timing — the smoke mode CI uses to keep bench code from
//! rotting.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// `true` when the binary was invoked with `--test` (single-iteration
/// smoke mode, as in upstream criterion).
fn test_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// Per-iteration timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f`, accumulating into the bencher.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if test_mode() {
            let start = Instant::now();
            std::hint::black_box(f());
            self.total = start.elapsed();
            self.iters = 1;
            return;
        }
        // Warmup: let caches/branch predictors settle and estimate cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            std::hint::black_box(f());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        // Timed batch: aim for ~200ms of measurement.
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / u128::from(warmup_iters);
        let target = (200_000_000 / per_iter.max(1)).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            std::hint::black_box(f());
        }
        self.total = start.elapsed();
        self.iters = target;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<44} (no iterations)");
            return;
        }
        let ns = self.total.as_nanos() as f64 / self.iters as f64;
        let (value, unit) = if ns < 1_000.0 {
            (ns, "ns")
        } else if ns < 1_000_000.0 {
            (ns / 1_000.0, "µs")
        } else {
            (ns / 1_000_000.0, "ms")
        };
        println!(
            "{name:<44} {value:>10.3} {unit}/iter  ({} iters)",
            self.iters
        );
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks (`sample_size` is accepted and ignored).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(&format!("{}/{name}", self.name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Opaque value barrier, re-exported for parity with `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $f(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
