//! Offline stand-in for the subset of `proptest` this workspace uses: the
//! `proptest!` macro over range/tuple/`prop_map` strategies, with
//! deterministic random sampling instead of shrinking. Failures report the
//! case number; inputs are reproducible from the fixed internal seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Runner configuration (only `cases` is honored).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A source of random test values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Fair-coin boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The fair-coin instance.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Runs `cases` samples of a property body. Used by the `proptest!` macro.
pub fn run_cases<F: FnMut(&mut StdRng, u32)>(cases: u32, mut body: F) {
    // Fixed seed: deterministic across runs, distinct per case index.
    let mut rng = StdRng::seed_from_u64(0x70_72_6f_70_74_65_73_74);
    for case in 0..cases {
        body(&mut rng, case);
    }
}

/// The common `proptest` import set.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Deterministic-sampling replacement for `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(__cfg.cases, |__rng, __case| {
                    $( let $arg = $crate::Strategy::sample(&($strat), __rng); )+
                    let __run = || { $body };
                    __run();
                });
            }
        )*
    };
}

/// `prop_assert!` → `assert!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` → `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = f64> {
        (0.0..1.0f64, 0.0..1.0f64).prop_map(|(a, b)| a * b)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -3.0..7.0f64, n in 1usize..9) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn mapped_strategies_apply(p in small(), flip in crate::bool::ANY) {
            prop_assert!((0.0..1.0).contains(&p));
            let _ = flip;
        }
    }
}
