//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched; this crate provides the same API surface (`Rng`, `SeedableRng`,
//! `rngs::StdRng`) backed by a xoshiro256++ generator. Streams differ from
//! upstream `rand`, which is fine: nothing in the workspace depends on exact
//! sample sequences, only on distributional and structural properties.

use std::ops::{Range, RangeInclusive};

/// Low-level word source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform on `[0, 1)`, `bool` fair coin, integers uniform).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from raw bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draws one sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, i64, i32, i8, u8);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Non-random counting generators (`rand::rngs::mock`).
    pub mod mock {
        use super::RngCore;

        /// Generator returning `initial`, `initial + increment`, … verbatim.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a stepping generator.
            pub fn new(initial: u64, increment: u64) -> Self {
                Self {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let v = self.value;
                self.value = self.value.wrapping_add(self.increment);
                v
            }
        }
    }

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..50 {
            let v = rng.gen_range(0..=3usize);
            assert!(v <= 3);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_ne!(a, c);
    }
}
