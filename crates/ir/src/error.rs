//! Error types for IR construction and basis synthesis.

use std::error::Error;
use std::fmt;

/// Structural errors building instructions or circuits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrError {
    /// The gate matrix dimension does not match `2^k` for `k` qubits.
    DimensionMismatch {
        /// Number of qubits the instruction names.
        qubits: usize,
        /// Row count of the supplied matrix.
        rows: usize,
    },
    /// The gate matrix is not square.
    NonSquare {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// A qubit appears more than once in an instruction.
    RepeatedQubit {
        /// The offending qubit index.
        qubit: usize,
    },
    /// An instruction names a qubit outside the circuit register.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// Register size.
        n: usize,
    },
    /// Two circuits (or a circuit and a conversion) disagree on register
    /// size.
    RegisterMismatch {
        /// Required register size.
        expected: usize,
        /// Actual register size.
        got: usize,
    },
    /// An embedding target list does not match the circuit register.
    EmbedMismatch {
        /// Source register size.
        expected: usize,
        /// Number of targets supplied.
        got: usize,
    },
    /// A dense-unitary request on a register too large to materialize.
    RegisterTooLarge {
        /// Requested register size.
        n: usize,
        /// Supported maximum.
        max: usize,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DimensionMismatch { qubits, rows } => write!(
                f,
                "gate dimension mismatch: {qubits} qubit(s) need a {}x{} matrix, got {rows} rows",
                1usize << qubits,
                1usize << qubits
            ),
            IrError::NonSquare { rows, cols } => {
                write!(f, "gate matrix is not square ({rows}x{cols})")
            }
            IrError::RepeatedQubit { qubit } => write!(f, "repeated qubit {qubit}"),
            IrError::QubitOutOfRange { qubit, n } => {
                write!(f, "qubit {qubit} out of range for a {n}-qubit register")
            }
            IrError::RegisterMismatch { expected, got } => {
                write!(f, "expected a {expected}-qubit register, got {got}")
            }
            IrError::EmbedMismatch { expected, got } => {
                write!(f, "embedding expects {expected} target site(s), got {got}")
            }
            IrError::RegisterTooLarge { n, max } => {
                write!(f, "dense unitary limited to {max} qubits, register has {n}")
            }
        }
    }
}

impl Error for IrError {}

/// Failures synthesizing a unitary over a native basis.
#[derive(Clone, Debug)]
pub enum SynthError {
    /// A numerical search did not converge.
    Convergence {
        /// Basis that was synthesizing.
        basis: String,
        /// What failed (best residual, target class, …).
        detail: String,
    },
    /// The underlying pulse compiler rejected the target.
    Pulse {
        /// Basis that was synthesizing.
        basis: String,
        /// Pulse-compiler error rendered to text.
        detail: String,
    },
    /// The target is outside what the basis supports.
    InvalidTarget {
        /// Basis that was synthesizing.
        basis: String,
        /// Why the target is unsupported.
        detail: String,
    },
    /// A structural IR error surfaced during synthesis.
    Ir(IrError),
    /// A worker thread panicked while synthesizing this target; the panic
    /// was caught at the task boundary and converted to this per-item
    /// error, so the rest of the batch survives.
    WorkerPanic {
        /// The panic message, when one was available.
        detail: String,
    },
    /// The per-request deadline budget expired before synthesis finished.
    DeadlineExceeded {
        /// Basis that was synthesizing.
        basis: String,
        /// What stage of the search ran out of budget.
        detail: String,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Convergence { basis, detail } => {
                write!(f, "{basis} synthesis did not converge: {detail}")
            }
            SynthError::Pulse { basis, detail } => {
                write!(f, "{basis} pulse compilation failed: {detail}")
            }
            SynthError::InvalidTarget { basis, detail } => {
                write!(f, "target unsupported by {basis}: {detail}")
            }
            SynthError::Ir(e) => write!(f, "ir error during synthesis: {e}"),
            SynthError::WorkerPanic { detail } => {
                write!(f, "synthesis worker panicked: {detail}")
            }
            SynthError::DeadlineExceeded { basis, detail } => {
                write!(f, "{basis} synthesis deadline exceeded: {detail}")
            }
        }
    }
}

impl Error for SynthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IrError> for SynthError {
    fn from(e: IrError) -> Self {
        SynthError::Ir(e)
    }
}
