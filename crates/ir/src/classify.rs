//! Structural classification and commutation queries on [`Instruction`]s.
//!
//! The circuit optimizer (`ashn-opt`) rewrites circuits by asking questions
//! of individual gates — "is this a pure phase?", "do these two commute?" —
//! and those questions belong next to the IR they interrogate. The checks
//! use cheap structural fast paths (diagonal×diagonal always commutes,
//! disjoint wires always commute) and fall back to a dense commutator on
//! the joint wire space only when structure says nothing.

use crate::circuit::embed;
use crate::error::IrError;
use crate::instruction::Instruction;
use ashn_math::{CMat, Complex};

/// `Some(c)` when `m ≈ c·I` within `tol` (Frobenius), i.e. the matrix is a
/// pure phase times the identity. The witness `c` is the mean diagonal
/// entry, so folding it into a circuit's global phase is exact to rounding.
pub fn scalar_of(m: &CMat, tol: f64) -> Option<Complex> {
    if !m.is_square() || m.rows() == 0 {
        return None;
    }
    let n = m.rows();
    let c = m.trace() / n as f64;
    let mut off = 0.0;
    for r in 0..n {
        for col in 0..n {
            let expect = if r == col { c } else { Complex::ZERO };
            off += (m[(r, col)] - expect).norm_sqr();
        }
    }
    (off.sqrt() < tol).then_some(c)
}

/// The instruction's matrix re-expressed on an explicit ordered wire list:
/// `wires[i]` is the circuit qubit carried by bit `i` (big-endian) of the
/// returned `2^wires.len()` matrix. Every qubit of the instruction must
/// appear in `wires`; extra wires act as identity.
///
/// # Errors
///
/// [`IrError::QubitOutOfRange`] when the instruction touches a qubit not
/// listed in `wires`.
pub fn matrix_on(instruction: &Instruction, wires: &[usize]) -> Result<CMat, IrError> {
    let positions = instruction
        .qubits
        .iter()
        .map(|q| {
            wires
                .iter()
                .position(|w| w == q)
                .ok_or(IrError::QubitOutOfRange {
                    qubit: *q,
                    n: wires.len(),
                })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(embed(wires.len(), &positions, &instruction.matrix))
}

impl Instruction {
    /// `Some(phase)` when the gate is `phase·I` within `tol` — a "gate"
    /// that only contributes a global phase.
    pub fn phase_of_identity(&self, tol: f64) -> Option<Complex> {
        scalar_of(&self.matrix, tol)
    }

    /// `true` when this gate commutes with `other` (commutator Frobenius
    /// norm below `tol` on the joint wire space).
    ///
    /// Structural fast paths — disjoint wires, or both gates diagonal —
    /// answer without touching matrices; otherwise the dense commutator is
    /// evaluated on the union of the two wire sets (at most 4 qubits for
    /// 1q/2q gates, so the embedded products stay small).
    pub fn commutes_with(&self, other: &Instruction, tol: f64) -> bool {
        if self.qubits.iter().all(|q| !other.qubits.contains(q)) {
            return true;
        }
        if self.is_diagonal(tol) && other.is_diagonal(tol) {
            return true;
        }
        let mut wires: Vec<usize> = self.qubits.clone();
        for q in &other.qubits {
            if !wires.contains(q) {
                wires.push(*q);
            }
        }
        let a = matrix_on(self, &wires).expect("own qubits are in the union");
        let b = matrix_on(other, &wires).expect("own qubits are in the union");
        a.matmul(&b).dist(&b.matmul(&a)) < tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::c;

    fn x_gate() -> CMat {
        CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]])
    }

    fn z_gate() -> CMat {
        CMat::from_rows_f64(&[&[1.0, 0.0], &[0.0, -1.0]])
    }

    fn cz_gate() -> CMat {
        CMat::diag(&[Complex::ONE, Complex::ONE, Complex::ONE, c(-1.0, 0.0)])
    }

    #[test]
    fn scalar_detection() {
        let m = CMat::identity(4).scale(Complex::cis(0.4));
        let got = scalar_of(&m, 1e-12).expect("scalar");
        assert!((got - Complex::cis(0.4)).abs() < 1e-14);
        assert!(scalar_of(&x_gate(), 1e-9).is_none());
        assert!(Instruction::new(vec![0], x_gate(), "X")
            .phase_of_identity(1e-9)
            .is_none());
    }

    #[test]
    fn disjoint_wires_commute() {
        let a = Instruction::new(vec![0], x_gate(), "X");
        let b = Instruction::new(vec![1], z_gate(), "Z");
        assert!(a.commutes_with(&b, 1e-12));
    }

    #[test]
    fn diagonals_commute_structurally() {
        let a = Instruction::new(vec![0, 1], cz_gate(), "CZ");
        let b = Instruction::new(vec![1], z_gate(), "Z");
        assert!(a.commutes_with(&b, 1e-12));
        assert!(b.commutes_with(&a, 1e-12));
    }

    #[test]
    fn shared_wire_non_commuting_pair_detected() {
        let a = Instruction::new(vec![0], x_gate(), "X");
        let b = Instruction::new(vec![0], z_gate(), "Z");
        assert!(!a.commutes_with(&b, 1e-9));
        // CZ and X on a shared wire do not commute either.
        let cz = Instruction::new(vec![0, 1], cz_gate(), "CZ");
        assert!(!cz.commutes_with(&a, 1e-9));
    }

    #[test]
    fn dense_fallback_catches_non_diagonal_commuters() {
        // X⊗X commutes with X on either wire even though neither is
        // diagonal — only the dense check can see it.
        let xx = Instruction::new(vec![0, 1], x_gate().kron(&x_gate()), "XX");
        let x0 = Instruction::new(vec![0], x_gate(), "X");
        assert!(xx.commutes_with(&x0, 1e-12));
    }

    #[test]
    fn matrix_on_respects_wire_order() {
        let cz = Instruction::new(vec![2, 0], cz_gate(), "CZ");
        let m = matrix_on(&cz, &[0, 2]).unwrap();
        // CZ is symmetric under qubit exchange.
        assert!(m.dist(&cz_gate()) < 1e-15);
        assert!(matches!(
            matrix_on(&cz, &[0, 1]),
            Err(IrError::QubitOutOfRange { qubit: 2, .. })
        ));
    }
}
