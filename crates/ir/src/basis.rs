//! The native-gate-set synthesis interface.
//!
//! Each hardware-native two-qubit gate set (flux-tuned CZ, SQiSW, AshN, …)
//! implements [`Basis`]: given an arbitrary `SU(4)` target it produces a
//! two-qubit [`Circuit`] over its native entangler, or a [`SynthError`]
//! when its (possibly numerical) synthesis cannot. `ashn_qv::GateSet` is a
//! thin enum-to-`dyn Basis` dispatcher over the implementations in
//! `ashn-synth`; new bases (B-gate, iSWAP, …) are one `impl` away and slot
//! into routing, quantum-volume scoring, and the `ashn::Compiler` pipeline
//! unchanged.

use crate::circuit::Circuit;
use crate::error::SynthError;
use ashn_math::CMat;

/// The 4×4 SWAP matrix (local copy: `ashn-ir` sits below `ashn-gates`).
pub(crate) fn swap_matrix() -> CMat {
    CMat::from_rows_f64(&[
        &[1.0, 0.0, 0.0, 0.0],
        &[0.0, 0.0, 1.0, 0.0],
        &[0.0, 1.0, 0.0, 0.0],
        &[0.0, 0.0, 0.0, 1.0],
    ])
}

/// Search-effort hints for [`Basis::synthesize_with_effort`].
///
/// The default value (`attempt = 0`, no deadline) asks for the basis's
/// normal synthesis; retry layers raise `attempt` on each re-try so bases
/// with a numerical search can widen it (e.g. AshN's EA escalation rounds),
/// and set `deadline` to bound wall-clock time. Bases without a numerical
/// search ignore the hints entirely.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SynthEffort {
    /// Zero-based retry attempt; attempt `k > 0` should search wider than
    /// attempt `k − 1`, deterministically.
    pub attempt: u32,
    /// Seed for any attempt-specific jitter, derived by the retry layer
    /// from the request so retries are replayable.
    pub jitter_seed: u64,
    /// Absolute wall-clock deadline; expiry surfaces as
    /// [`SynthError::DeadlineExceeded`].
    pub deadline: Option<std::time::Instant>,
}

/// A native two-qubit gate set with per-basis synthesis rules.
pub trait Basis {
    /// Short display name (e.g. `"CZ"`, `"SQiSW"`, `"AshN(r=1.1)"`).
    fn name(&self) -> String;

    /// Scheme parameters that change synthesized circuits without changing
    /// the display name — the cache discriminator.
    ///
    /// Synthesis caches (`ashn_synth::cache`, the `ashn-service` sharded
    /// persistent cache) key entries by `(name, cache_params, Weyl class)`;
    /// two instances whose `name` and `cache_params` both match are
    /// promised to synthesize bit-identical circuits for the same target.
    /// Parameterized bases must override this with every parameter that
    /// affects output (e.g. AshN's `ZZ` ratio `h̃` and cutoff `r`);
    /// parameter-free bases keep the empty default.
    fn cache_params(&self) -> String {
        String::new()
    }

    /// Compiles an arbitrary two-qubit unitary into a circuit on qubits
    /// `{0, 1}` whose entanglers are all native to this basis.
    ///
    /// # Errors
    ///
    /// [`SynthError`] when synthesis fails (numerical non-convergence,
    /// pulse-compiler rejection, malformed target).
    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError>;

    /// [`Basis::synthesize`] with explicit search effort. The default
    /// implementation ignores the hints (correct for closed-form bases,
    /// whose synthesis cannot fail numerically); bases with a numerical
    /// search should widen their multistart for `effort.attempt > 0` and
    /// respect `effort.deadline`.
    ///
    /// The cache-coherence contract: for any effort, a success must
    /// realize the same target (caches may store circuits produced at any
    /// attempt under the same class key).
    ///
    /// # Errors
    ///
    /// Same as [`Basis::synthesize`], plus
    /// [`SynthError::DeadlineExceeded`] when the deadline expires.
    fn synthesize_with_effort(&self, u: &CMat, effort: SynthEffort) -> Result<Circuit, SynthError> {
        let _ = effort;
        self.synthesize(u)
    }

    /// The compiled SWAP, used by routing. The default synthesizes the SWAP
    /// matrix; bases with a cheaper native SWAP (AshN's single `3π/4`
    /// pulse arises automatically; an iSWAP-like basis might override).
    ///
    /// # Errors
    ///
    /// Propagates [`SynthError`] from synthesis.
    fn native_swap(&self) -> Result<Circuit, SynthError> {
        self.synthesize(&swap_matrix())
    }

    /// Number of native entanglers this basis needs for the class of `u`
    /// (the analytic count; [`Basis::synthesize`] is expected to achieve
    /// it).
    fn expected_entanglers(&self, u: &CMat) -> usize;
}

impl<B: Basis + ?Sized> Basis for &B {
    fn name(&self) -> String {
        (**self).name()
    }
    fn cache_params(&self) -> String {
        (**self).cache_params()
    }
    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        (**self).synthesize(u)
    }
    fn synthesize_with_effort(&self, u: &CMat, effort: SynthEffort) -> Result<Circuit, SynthError> {
        (**self).synthesize_with_effort(u, effort)
    }
    fn native_swap(&self) -> Result<Circuit, SynthError> {
        (**self).native_swap()
    }
    fn expected_entanglers(&self, u: &CMat) -> usize {
        (**self).expected_entanglers(u)
    }
}

impl Basis for Box<dyn Basis> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn cache_params(&self) -> String {
        (**self).cache_params()
    }
    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        (**self).synthesize(u)
    }
    fn synthesize_with_effort(&self, u: &CMat, effort: SynthEffort) -> Result<Circuit, SynthError> {
        (**self).synthesize_with_effort(u, effort)
    }
    fn native_swap(&self) -> Result<Circuit, SynthError> {
        (**self).native_swap()
    }
    fn expected_entanglers(&self, u: &CMat) -> usize {
        (**self).expected_entanglers(u)
    }
}
