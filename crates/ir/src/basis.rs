//! The native-gate-set synthesis interface.
//!
//! Each hardware-native two-qubit gate set (flux-tuned CZ, SQiSW, AshN, …)
//! implements [`Basis`]: given an arbitrary `SU(4)` target it produces a
//! two-qubit [`Circuit`] over its native entangler, or a [`SynthError`]
//! when its (possibly numerical) synthesis cannot. `ashn_qv::GateSet` is a
//! thin enum-to-`dyn Basis` dispatcher over the implementations in
//! `ashn-synth`; new bases (B-gate, iSWAP, …) are one `impl` away and slot
//! into routing, quantum-volume scoring, and the `ashn::Compiler` pipeline
//! unchanged.

use crate::circuit::Circuit;
use crate::error::SynthError;
use ashn_math::CMat;

/// The 4×4 SWAP matrix (local copy: `ashn-ir` sits below `ashn-gates`).
pub(crate) fn swap_matrix() -> CMat {
    CMat::from_rows_f64(&[
        &[1.0, 0.0, 0.0, 0.0],
        &[0.0, 0.0, 1.0, 0.0],
        &[0.0, 1.0, 0.0, 0.0],
        &[0.0, 0.0, 0.0, 1.0],
    ])
}

/// Weyl-equivalence category of a gate set's native entangler.
///
/// This is the instruction-set classification used by retargeting: gate
/// sets whose entanglers share a category are related by closed-form local
/// dressings (CX ↔ CZ ↔ ECR), and cross-category constructions (SWAP from
/// 3×CX, CX from an SQiSW pair) are exact table entries. The categories
/// drive both the rule tier (`ashn_synth::retarget`) and analytic
/// entangler-count prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WeylCategory {
    /// The CNOT family — CX, CZ, ECR: canonical class `(π/4, 0, 0)`.
    Cnot,
    /// The iSWAP family: canonical class `(π/4, π/4, 0)`.
    Iswap,
    /// The `√iSWAP` family: canonical class `(π/8, π/8, 0)`.
    Sqisw,
    /// Continuous schemes that realize every Weyl class in a single native
    /// pulse (the paper's AshN instruction).
    Continuous,
    /// Anything else; counts fall back to [`EntanglerCounts`] buckets.
    Other,
}

/// Expected native-entangler counts by coarse target-class kind.
///
/// The buckets mirror the analytic count theorems: the identity class, the
/// CNOT class `(π/4, 0, 0)`, "flat" classes with `z = 0` (reachable in two
/// applications for CNOT-family sets), and everything else.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EntanglerCounts {
    /// Entanglers for the identity class.
    pub identity: usize,
    /// Entanglers for the CNOT class `(π/4, 0, 0)`.
    pub cnot: usize,
    /// Entanglers for non-trivial classes with `z ≈ 0`.
    pub flat: usize,
    /// Entanglers for a generic (full-chamber) class.
    pub generic: usize,
}

/// Static per-[`Basis`] instruction-set metadata for the retargeting
/// registry (`ashn_synth::retarget::GateSetRegistry`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BasisMetadata {
    /// Canonical Weyl coordinates `(x, y, z)` of the fixed native
    /// entangler. All zeros for [`WeylCategory::Continuous`] sets, whose
    /// pulse realizes any class directly.
    pub weyl: [f64; 3],
    /// Local-equivalence family of the entangler.
    pub category: WeylCategory,
    /// Analytic entangler counts per target-class bucket.
    pub counts: EntanglerCounts,
    /// Native entangler duration in `1/g` units; for
    /// [`WeylCategory::Continuous`] sets this is the worst-case
    /// (SWAP-class) pulse time.
    pub duration: f64,
}

/// Search-effort hints for [`Basis::synthesize_with_effort`].
///
/// The default value (`attempt = 0`, no deadline) asks for the basis's
/// normal synthesis; retry layers raise `attempt` on each re-try so bases
/// with a numerical search can widen it (e.g. AshN's EA escalation rounds),
/// and set `deadline` to bound wall-clock time. Bases without a numerical
/// search ignore the hints entirely.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SynthEffort {
    /// Zero-based retry attempt; attempt `k > 0` should search wider than
    /// attempt `k − 1`, deterministically.
    pub attempt: u32,
    /// Seed for any attempt-specific jitter, derived by the retry layer
    /// from the request so retries are replayable.
    pub jitter_seed: u64,
    /// Absolute wall-clock deadline; expiry surfaces as
    /// [`SynthError::DeadlineExceeded`].
    pub deadline: Option<std::time::Instant>,
}

/// A native two-qubit gate set with per-basis synthesis rules.
pub trait Basis {
    /// Short display name (e.g. `"CZ"`, `"SQiSW"`, `"AshN(r=1.1)"`).
    fn name(&self) -> String;

    /// Scheme parameters that change synthesized circuits without changing
    /// the display name — the cache discriminator.
    ///
    /// Synthesis caches (`ashn_synth::cache`, the `ashn-service` sharded
    /// persistent cache) key entries by `(name, cache_params, Weyl class)`;
    /// two instances whose `name` and `cache_params` both match are
    /// promised to synthesize bit-identical circuits for the same target.
    /// Parameterized bases must override this with every parameter that
    /// affects output (e.g. AshN's `ZZ` ratio `h̃` and cutoff `r`);
    /// parameter-free bases keep the empty default.
    fn cache_params(&self) -> String {
        String::new()
    }

    /// Compiles an arbitrary two-qubit unitary into a circuit on qubits
    /// `{0, 1}` whose entanglers are all native to this basis.
    ///
    /// # Errors
    ///
    /// [`SynthError`] when synthesis fails (numerical non-convergence,
    /// pulse-compiler rejection, malformed target).
    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError>;

    /// [`Basis::synthesize`] with explicit search effort. The default
    /// implementation ignores the hints (correct for closed-form bases,
    /// whose synthesis cannot fail numerically); bases with a numerical
    /// search should widen their multistart for `effort.attempt > 0` and
    /// respect `effort.deadline`.
    ///
    /// The cache-coherence contract: for any effort, a success must
    /// realize the same target (caches may store circuits produced at any
    /// attempt under the same class key).
    ///
    /// # Errors
    ///
    /// Same as [`Basis::synthesize`], plus
    /// [`SynthError::DeadlineExceeded`] when the deadline expires.
    fn synthesize_with_effort(&self, u: &CMat, effort: SynthEffort) -> Result<Circuit, SynthError> {
        let _ = effort;
        self.synthesize(u)
    }

    /// The compiled SWAP, used by routing. The default synthesizes the SWAP
    /// matrix; bases with a cheaper native SWAP (AshN's single `3π/4`
    /// pulse arises automatically; an iSWAP-like basis might override).
    ///
    /// # Errors
    ///
    /// Propagates [`SynthError`] from synthesis.
    fn native_swap(&self) -> Result<Circuit, SynthError> {
        self.synthesize(&swap_matrix())
    }

    /// Number of native entanglers this basis needs for the class of `u`
    /// (the analytic count; [`Basis::synthesize`] is expected to achieve
    /// it).
    fn expected_entanglers(&self, u: &CMat) -> usize;

    /// Instruction-set metadata for the retargeting registry: the native
    /// entangler's canonical Weyl coordinates, its [`WeylCategory`], the
    /// analytic per-class entangler counts, and the entangler duration.
    ///
    /// `None` (the default) means "unclassified": the rule tier skips the
    /// basis entirely and consumers fall back to
    /// [`Basis::expected_entanglers`]. Bases that override this get
    /// registry-driven entangler-count prediction and, when their `name` /
    /// `cache_params` match a registered rule table, closed-form
    /// retargeting ahead of numeric synthesis.
    fn metadata(&self) -> Option<BasisMetadata> {
        None
    }
}

impl<B: Basis + ?Sized> Basis for &B {
    fn name(&self) -> String {
        (**self).name()
    }
    fn cache_params(&self) -> String {
        (**self).cache_params()
    }
    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        (**self).synthesize(u)
    }
    fn synthesize_with_effort(&self, u: &CMat, effort: SynthEffort) -> Result<Circuit, SynthError> {
        (**self).synthesize_with_effort(u, effort)
    }
    fn native_swap(&self) -> Result<Circuit, SynthError> {
        (**self).native_swap()
    }
    fn expected_entanglers(&self, u: &CMat) -> usize {
        (**self).expected_entanglers(u)
    }
    fn metadata(&self) -> Option<BasisMetadata> {
        (**self).metadata()
    }
}

impl Basis for Box<dyn Basis> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn cache_params(&self) -> String {
        (**self).cache_params()
    }
    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        (**self).synthesize(u)
    }
    fn synthesize_with_effort(&self, u: &CMat, effort: SynthEffort) -> Result<Circuit, SynthError> {
        (**self).synthesize_with_effort(u, effort)
    }
    fn native_swap(&self) -> Result<Circuit, SynthError> {
        (**self).native_swap()
    }
    fn expected_entanglers(&self, u: &CMat) -> usize {
        (**self).expected_entanglers(u)
    }
    fn metadata(&self) -> Option<BasisMetadata> {
        (**self).metadata()
    }
}
