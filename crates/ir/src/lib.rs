//! # ashn-ir
//!
//! The single canonical circuit representation of the AshN workspace, plus
//! the [`Basis`] abstraction every native-gate-set synthesizer implements.
//!
//! The paper's thesis is that AshN is *one* instruction set serving every
//! two-qubit workload; this crate is the code-level counterpart: one
//! [`Instruction`]/[`Circuit`] pair shared by the simulator (`ashn-sim`),
//! the synthesizers (`ashn-synth`), the router (`ashn-route`), and the
//! quantum-volume experiments (`ashn-qv`), replacing the three private IRs
//! the crates previously stitched together by hand.
//!
//! * [`Instruction`] — one gate: acted-on qubits, unitary, label, duration
//!   (units of `1/g`), optional per-gate error rate.
//! * [`Circuit`] — an `n`-qubit register, a global phase, and instructions
//!   in application order, with [`Circuit::unitary`],
//!   [`Circuit::entangler_count`], [`Circuit::entangler_duration`],
//!   [`Circuit::embed`], and single-qubit fusion.
//! * [`Basis`] — the per-gate-set synthesis interface
//!   (`synthesize`, `name`, `native_swap`, `expected_entanglers`), so new
//!   native bases (B-gate, iSWAP, …) are one `impl` away.
//! * [`IrError`]/[`SynthError`] — the fallible construction and synthesis
//!   error types the rest of the workspace builds its error hierarchy on.
//!
//! ## Example
//!
//! ```
//! use ashn_ir::{Circuit, Instruction};
//! use ashn_math::CMat;
//!
//! let x = CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]]);
//! let mut c = Circuit::new(2);
//! c.push(Instruction::new(vec![1], x, "X").with_duration(0.0));
//! assert_eq!(c.entangler_count(), 0);
//! assert!(c.unitary().is_unitary(1e-12));
//! ```

pub mod basis;
pub mod circuit;
pub mod classify;
pub mod error;
pub mod instruction;
pub mod kernels;

pub use basis::{Basis, BasisMetadata, EntanglerCounts, SynthEffort, WeylCategory};
pub use circuit::{embed, Circuit};
pub use classify::{matrix_on, scalar_of};
pub use error::{IrError, SynthError};
pub use instruction::Instruction;
