//! The canonical `n`-qubit circuit: a register size, a global phase, and
//! instructions in application order.

use crate::error::IrError;
use crate::instruction::Instruction;
use ashn_math::{CMat, Complex};

/// Largest register for which a dense unitary is materialized.
pub const MAX_DENSE_QUBITS: usize = 12;

/// A quantum circuit on `n` qubits with a global phase.
///
/// Invariants (maintained by [`Circuit::push`]/[`Circuit::try_push`] and the
/// constructors): every instruction's qubits lie in `0..n` and its matrix
/// dimension matches its arity. The fields are public so pattern-style reads
/// (`for g in &c.instructions`) stay ergonomic; code that mutates them
/// directly is responsible for the invariants.
#[derive(Clone, Debug)]
pub struct Circuit {
    /// Register size.
    pub n: usize,
    /// Global phase multiplying the circuit unitary.
    pub phase: Complex,
    /// Instructions in application order.
    pub instructions: Vec<Instruction>,
}

impl Default for Circuit {
    fn default() -> Self {
        Circuit::new(0)
    }
}

impl Circuit {
    /// The empty circuit on `n` qubits (identity, unit phase).
    pub fn new(n: usize) -> Self {
        Self {
            n,
            phase: Complex::ONE,
            instructions: Vec::new(),
        }
    }

    /// Number of qubits (accessor kept for `ashn_sim::Circuit` parity).
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The instructions in application order (accessor kept for
    /// `ashn_sim::Circuit` parity).
    pub fn gates(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Appends an instruction, validating the register bound.
    ///
    /// # Errors
    ///
    /// [`IrError::QubitOutOfRange`] when the gate touches qubits outside
    /// the register.
    pub fn try_push(&mut self, instruction: Instruction) -> Result<(), IrError> {
        if let Some(&q) = instruction.qubits.iter().find(|&&q| q >= self.n) {
            return Err(IrError::QubitOutOfRange {
                qubit: q,
                n: self.n,
            });
        }
        self.instructions.push(instruction);
        Ok(())
    }

    /// Appends an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the gate touches qubits outside the register; fallible
    /// library paths use [`Circuit::try_push`].
    pub fn push(&mut self, instruction: Instruction) {
        if let Err(e) = self.try_push(instruction) {
            panic!("{e}");
        }
    }

    /// Appends all instructions of `other` (same register size) and folds
    /// its global phase into this circuit's.
    ///
    /// # Errors
    ///
    /// [`IrError::RegisterMismatch`] on register-size mismatch.
    pub fn append(&mut self, other: Circuit) -> Result<(), IrError> {
        if other.n != self.n {
            return Err(IrError::RegisterMismatch {
                expected: self.n,
                got: other.n,
            });
        }
        self.phase *= other.phase;
        self.instructions.extend(other.instructions);
        Ok(())
    }

    /// Total duration (sum of instruction durations).
    pub fn total_duration(&self) -> f64 {
        self.instructions.iter().map(|g| g.duration).sum()
    }

    /// Number of instructions acting on ≥ 2 qubits.
    pub fn entangler_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|g| g.is_entangler())
            .count()
    }

    /// Alias of [`Circuit::entangler_count`] (kept for `ashn_sim` parity).
    pub fn two_qubit_gate_count(&self) -> usize {
        self.entangler_count()
    }

    /// Alias of [`Circuit::entangler_count`] (kept for `ashn_synth::NCircuit`
    /// parity).
    pub fn two_qubit_count(&self) -> usize {
        self.entangler_count()
    }

    /// Summed duration of the instructions acting on ≥ 2 qubits.
    pub fn entangler_duration(&self) -> f64 {
        self.instructions
            .iter()
            .filter(|g| g.is_entangler())
            .map(|g| g.duration)
            .sum()
    }

    /// The dense unitary of the whole circuit, including the global phase.
    ///
    /// Columns are propagated through the instruction list with the
    /// statevector kernel, so the cost is `O(gates · 2^n)` per column rather
    /// than dense matrix products.
    ///
    /// # Panics
    ///
    /// Panics for registers above [`MAX_DENSE_QUBITS`]; use
    /// [`Circuit::try_unitary`] on untrusted sizes.
    pub fn unitary(&self) -> CMat {
        match self.try_unitary() {
            Ok(u) => u,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Circuit::unitary`].
    ///
    /// # Errors
    ///
    /// [`IrError::RegisterTooLarge`] above [`MAX_DENSE_QUBITS`] qubits.
    pub fn try_unitary(&self) -> Result<CMat, IrError> {
        if self.n > MAX_DENSE_QUBITS {
            return Err(IrError::RegisterTooLarge {
                n: self.n,
                max: MAX_DENSE_QUBITS,
            });
        }
        let dim = 1usize << self.n;
        let mut u = CMat::zeros(dim, dim);
        let mut amps = vec![Complex::ZERO; dim];
        for i in 0..dim {
            amps.fill(Complex::ZERO);
            amps[i] = self.phase;
            for g in &self.instructions {
                apply_gate(&mut amps, self.n, &g.qubits, &g.matrix);
            }
            for (r, a) in amps.iter().enumerate() {
                u[(r, i)] = *a;
            }
        }
        Ok(u)
    }

    /// Frobenius distance between this circuit's unitary and a target.
    pub fn error(&self, target: &CMat) -> f64 {
        self.unitary().dist(target)
    }

    /// Embeds this circuit into a larger register: instruction qubits are
    /// relabeled via `targets` (`targets[q]` = physical site of logical
    /// qubit `q`), the global phase is preserved.
    ///
    /// # Errors
    ///
    /// [`IrError::EmbedMismatch`] when `targets` does not cover the source
    /// register, [`IrError::QubitOutOfRange`] when a target site exceeds
    /// `n`, [`IrError::RepeatedQubit`] when two logical qubits share a site.
    pub fn embed(&self, n: usize, targets: &[usize]) -> Result<Circuit, IrError> {
        if targets.len() != self.n {
            return Err(IrError::EmbedMismatch {
                expected: self.n,
                got: targets.len(),
            });
        }
        for (i, t) in targets.iter().enumerate() {
            if *t >= n {
                return Err(IrError::QubitOutOfRange { qubit: *t, n });
            }
            if targets[i + 1..].contains(t) {
                return Err(IrError::RepeatedQubit { qubit: *t });
            }
        }
        let mut out = Circuit::new(n);
        out.phase = self.phase;
        for g in &self.instructions {
            out.try_push(g.remapped(targets)?)?;
        }
        Ok(out)
    }

    /// Fuses runs of adjacent single-qubit gates per wire into one gate
    /// (flushed whenever an entangler touches the wire), preserving the
    /// circuit unitary. Fused gates carry zero duration and no explicit
    /// error rate — matching the historical `qv` flattening semantics where
    /// a dressed run costs one single-qubit noise event.
    pub fn fuse_single_qubit_runs(&self) -> Circuit {
        let mut out = Circuit::new(self.n);
        out.phase = self.phase;
        let mut pending: Vec<Option<CMat>> = vec![None; self.n];
        fn flush(q: usize, pending: &mut [Option<CMat>], out: &mut Circuit) {
            if let Some(m) = pending[q].take() {
                out.instructions
                    .push(Instruction::new(vec![q], m, "1q").with_duration(0.0));
            }
        }
        for g in &self.instructions {
            if g.qubits.len() == 1 && g.error_rate.is_none() && g.duration == 0.0 {
                let q = g.qubits[0];
                pending[q] = Some(match pending[q].take() {
                    Some(prev) => g.matrix.matmul(&prev),
                    None => g.matrix.clone(),
                });
            } else {
                for &q in &g.qubits {
                    flush(q, &mut pending, &mut out);
                }
                out.instructions.push(g.clone());
            }
        }
        for q in 0..self.n {
            flush(q, &mut pending, &mut out);
        }
        out
    }
}

/// Applies a `k`-qubit unitary to raw amplitudes of an `n`-qubit register
/// (qubit 0 = most significant bit, matching `ashn-sim`).
///
/// Dispatches to the specialized in-place kernels in [`crate::kernels`] for
/// `k = 1` and `k = 2` (including diagonal/controlled-phase fast paths);
/// higher arities fall back to [`crate::kernels::apply_gate_generic`].
pub fn apply_gate(amps: &mut [Complex], n: usize, qubits: &[usize], m: &CMat) {
    debug_assert_eq!(amps.len(), 1 << n);
    debug_assert_eq!(m.rows(), 1 << qubits.len());
    match *qubits {
        [q] => crate::kernels::apply_1q(amps, n, q, m),
        [q0, q1] => crate::kernels::apply_2q(amps, n, q0, q1, m),
        _ => crate::kernels::apply_gate_generic(amps, n, qubits, m),
    }
}

/// Embeds a `k`-qubit gate matrix into the full `2^n` space (dense form;
/// formerly `ashn_synth`'s n-qubit embedding).
pub fn embed(n: usize, qubits: &[usize], m: &CMat) -> CMat {
    let k = qubits.len();
    assert_eq!(m.rows(), 1 << k, "gate dimension mismatch in embed");
    let dim = 1usize << n;
    let pos: Vec<usize> = qubits.iter().map(|q| n - 1 - q).collect();
    let mask: usize = pos.iter().map(|p| 1usize << p).sum();
    let mut out = CMat::zeros(dim, dim);
    let sub = 1usize << k;
    let expand = |base: usize, idx: usize| -> usize {
        let mut v = base;
        for (j, p) in pos.iter().enumerate() {
            if idx >> (k - 1 - j) & 1 == 1 {
                v |= 1 << p;
            }
        }
        v
    };
    for base in 0..dim {
        if base & mask != 0 {
            continue;
        }
        for r in 0..sub {
            for c in 0..sub {
                out[(expand(base, r), expand(base, c))] = m[(r, c)];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::c;

    fn x_gate() -> CMat {
        CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]])
    }

    fn h_gate() -> CMat {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        CMat::from_rows_f64(&[&[s, s], &[s, -s]])
    }

    #[test]
    fn unitary_includes_phase_and_composes() {
        let mut circ = Circuit::new(2);
        circ.phase = Complex::cis(0.7);
        circ.push(Instruction::new(vec![0], h_gate(), "H"));
        circ.push(Instruction::new(vec![1], x_gate(), "X"));
        let expect = h_gate().kron(&x_gate()).scale(Complex::cis(0.7));
        assert!(circ.unitary().dist(&expect) < 1e-12);
    }

    #[test]
    fn embed_relabels_and_preserves_phase() {
        let mut circ = Circuit::new(2);
        circ.phase = c(0.0, 1.0);
        circ.push(Instruction::new(vec![0], x_gate(), "X"));
        let e = circ.embed(3, &[2, 0]).unwrap();
        assert_eq!(e.n, 3);
        assert_eq!(e.instructions[0].qubits, vec![2]);
        assert!((e.phase - c(0.0, 1.0)).abs() < 1e-15);
        assert!(matches!(
            circ.embed(3, &[0]),
            Err(IrError::EmbedMismatch { .. })
        ));
        assert!(matches!(
            circ.embed(3, &[0, 5]),
            Err(IrError::QubitOutOfRange { .. })
        ));
        assert!(matches!(
            circ.embed(3, &[1, 1]),
            Err(IrError::RepeatedQubit { .. })
        ));
    }

    #[test]
    fn fuse_merges_adjacent_singles_only() {
        let mut circ = Circuit::new(2);
        circ.push(Instruction::new(vec![0], h_gate(), "H"));
        circ.push(Instruction::new(vec![0], x_gate(), "X"));
        circ.push(Instruction::new(vec![1], h_gate(), "H"));
        let cnot = CMat::from_rows_f64(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[0.0, 0.0, 1.0, 0.0],
        ]);
        circ.push(Instruction::new(vec![0, 1], cnot, "CNOT").with_duration(1.0));
        circ.push(Instruction::new(vec![1], x_gate(), "X"));
        let fused = circ.fuse_single_qubit_runs();
        // H·X on wire 0 and H on wire 1 fuse; the trailing X stays.
        assert_eq!(fused.instructions.len(), 4);
        assert!(fused.unitary().dist(&circ.unitary()) < 1e-12);
        assert_eq!(fused.entangler_count(), 1);
        assert!((fused.entangler_duration() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn try_push_rejects_out_of_range() {
        let mut circ = Circuit::new(1);
        let err = circ
            .try_push(Instruction::new(vec![1], x_gate(), "X"))
            .unwrap_err();
        assert!(matches!(err, IrError::QubitOutOfRange { qubit: 1, n: 1 }));
    }

    #[test]
    fn append_folds_phases() {
        let mut a = Circuit::new(1);
        a.phase = Complex::cis(0.3);
        let mut b = Circuit::new(1);
        b.phase = Complex::cis(0.4);
        b.push(Instruction::new(vec![0], x_gate(), "X"));
        a.append(b).unwrap();
        assert!((a.phase - Complex::cis(0.7)).abs() < 1e-12);
        assert_eq!(a.instructions.len(), 1);
        assert!(a.append(Circuit::new(2)).is_err());
    }

    #[test]
    fn embed_respects_qubit_ordering() {
        // X on qubit 1 of 2 = I ⊗ X; on qubit 0 = X ⊗ I.
        let e1 = embed(2, &[1], &x_gate());
        assert!(e1.dist(&CMat::identity(2).kron(&x_gate())) < 1e-15);
        let e0 = embed(2, &[0], &x_gate());
        assert!(e0.dist(&x_gate().kron(&CMat::identity(2))) < 1e-15);
    }

    #[test]
    fn embed_reversed_pair_transposes_roles() {
        let u = CMat::from_rows_f64(&[
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[1.0, 0.0, 0.0, 0.0],
        ]);
        let swap = CMat::from_rows_f64(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
        ]);
        let a = embed(2, &[1, 0], &u);
        let b = swap.matmul(&u).matmul(&swap);
        assert!(a.dist(&b) < 1e-12);
    }

    #[test]
    fn dense_embed_matches_kernel_application() {
        let u = CMat::from_rows_f64(&[
            &[0.0, 1.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[0.0, 0.0, 1.0, 0.0],
        ]);
        let mut circ = Circuit::new(3);
        circ.push(Instruction::new(vec![2, 0], u.clone(), "U"));
        assert!(circ.unitary().dist(&embed(3, &[2, 0], &u)) < 1e-12);
    }
}
