//! Specialized in-place statevector kernels for the hot gate arities.
//!
//! [`crate::circuit::apply_gate`] dispatches here: dedicated bit-twiddling
//! kernels for `k = 1` and `k = 2` gates (plus recognized diagonal and
//! controlled-phase special cases such as Rz, CZ, and ZZ), with the generic
//! gather/scatter path kept only as the `k ≥ 3` fallback. All kernels act on
//! raw amplitudes with qubit 0 as the most significant bit of the basis
//! index, matching `ashn-sim`.
//!
//! Every fast path is *lossless*: special cases trigger only on exact
//! structural zeros, and the differential suite in
//! `crates/sim/tests/kernels.rs` pins each kernel to the generic path at
//! `1e-12` on random unitaries and placements.

use ashn_math::{CMat, Complex};

/// Inserts a zero bit at position `p`, shifting the higher bits up.
#[inline(always)]
fn insert_zero(x: usize, p: usize) -> usize {
    let low = (1usize << p) - 1;
    ((x & !low) << 1) | (x & low)
}

/// Applies a single-qubit unitary to `qubit` of an `n`-qubit register.
pub fn apply_1q(amps: &mut [Complex], n: usize, qubit: usize, m: &CMat) {
    debug_assert_eq!(amps.len(), 1 << n);
    debug_assert_eq!(m.rows(), 2);
    let p = n - 1 - qubit;
    let bit = 1usize << p;
    let md = m.as_slice();
    let (m00, m01, m10, m11) = (md[0], md[1], md[2], md[3]);
    if m01 == Complex::ZERO && m10 == Complex::ZERO {
        return apply_diag_1q(amps, p, m00, m11);
    }
    let half = amps.len() >> 1;
    for i in 0..half {
        let i0 = insert_zero(i, p);
        let i1 = i0 | bit;
        let a = amps[i0];
        let b = amps[i1];
        amps[i0] = m00 * a + m01 * b;
        amps[i1] = m10 * a + m11 * b;
    }
}

/// Diagonal single-qubit gate (Rz-like): pure per-amplitude phases. When the
/// `|0⟩` entry is exactly 1 (a phase gate), only the set-bit half is touched.
fn apply_diag_1q(amps: &mut [Complex], p: usize, d0: Complex, d1: Complex) {
    let bit = 1usize << p;
    if d0 == Complex::ONE {
        let half = amps.len() >> 1;
        for i in 0..half {
            let idx = insert_zero(i, p) | bit;
            amps[idx] *= d1;
        }
    } else {
        for (i, a) in amps.iter_mut().enumerate() {
            *a *= if i & bit == 0 { d0 } else { d1 };
        }
    }
}

/// Applies a two-qubit unitary to `(q0, q1)` of an `n`-qubit register
/// (`q0` is the most significant bit of the 4×4 matrix index).
pub fn apply_2q(amps: &mut [Complex], n: usize, q0: usize, q1: usize, m: &CMat) {
    debug_assert_eq!(amps.len(), 1 << n);
    debug_assert_eq!(m.rows(), 4);
    debug_assert_ne!(q0, q1);
    let p0 = n - 1 - q0;
    let p1 = n - 1 - q1;
    let (b0, b1) = (1usize << p0, 1usize << p1);
    let md = m.as_slice();
    if is_diag_4(md) {
        return apply_diag_2q(amps, p0, p1, [md[0], md[5], md[10], md[15]]);
    }
    let (pl, ph) = if p0 < p1 { (p0, p1) } else { (p1, p0) };
    let quarter = amps.len() >> 2;
    for i in 0..quarter {
        let base = insert_zero(insert_zero(i, pl), ph);
        let (i1, i2, i3) = (base | b1, base | b0, base | b0 | b1);
        let a0 = amps[base];
        let a1 = amps[i1];
        let a2 = amps[i2];
        let a3 = amps[i3];
        amps[base] = md[0] * a0 + md[1] * a1 + md[2] * a2 + md[3] * a3;
        amps[i1] = md[4] * a0 + md[5] * a1 + md[6] * a2 + md[7] * a3;
        amps[i2] = md[8] * a0 + md[9] * a1 + md[10] * a2 + md[11] * a3;
        amps[i3] = md[12] * a0 + md[13] * a1 + md[14] * a2 + md[15] * a3;
    }
}

/// `true` when a row-major 4×4 matrix has exact zeros off the diagonal.
#[inline]
fn is_diag_4(md: &[Complex]) -> bool {
    for (i, v) in md.iter().enumerate() {
        if i % 5 != 0 && *v != Complex::ZERO {
            return false;
        }
    }
    true
}

/// Diagonal two-qubit gate (CZ / ZZ / controlled-phase): per-amplitude
/// phases. Controlled-phase gates (first three diagonal entries exactly 1,
/// e.g. CZ) touch only the quarter of the state with both bits set.
fn apply_diag_2q(amps: &mut [Complex], p0: usize, p1: usize, d: [Complex; 4]) {
    let (b0, b1) = (1usize << p0, 1usize << p1);
    if d[0] == Complex::ONE && d[1] == Complex::ONE && d[2] == Complex::ONE {
        let (pl, ph) = if p0 < p1 { (p0, p1) } else { (p1, p0) };
        let quarter = amps.len() >> 2;
        for i in 0..quarter {
            let idx = insert_zero(insert_zero(i, pl), ph) | b0 | b1;
            amps[idx] *= d[3];
        }
    } else {
        for (i, a) in amps.iter_mut().enumerate() {
            let s = (((i >> p0) & 1) << 1) | ((i >> p1) & 1);
            *a *= d[s];
        }
    }
}

/// The generic `k`-qubit gather/scatter kernel: correct for any arity, used
/// as the dispatch fallback for `k ≥ 3` and as the reference implementation
/// the fast kernels are differentially tested against.
pub fn apply_gate_generic(amps: &mut [Complex], n: usize, qubits: &[usize], m: &CMat) {
    let k = qubits.len();
    debug_assert_eq!(amps.len(), 1 << n);
    debug_assert_eq!(m.rows(), 1 << k);
    let pos: Vec<usize> = qubits.iter().map(|q| n - 1 - q).collect();
    let targets_mask: usize = pos.iter().map(|p| 1usize << p).sum();
    let dim = 1usize << n;
    let sub = 1usize << k;
    let mut gathered = vec![Complex::ZERO; sub];
    let index_of = |base: usize, s: usize| -> usize {
        let mut idx = base;
        for (j, p) in pos.iter().enumerate() {
            if s >> (k - 1 - j) & 1 == 1 {
                idx |= 1 << p;
            }
        }
        idx
    };
    for base in 0..dim {
        if base & targets_mask != 0 {
            continue;
        }
        for (s, g) in gathered.iter_mut().enumerate() {
            *g = amps[index_of(base, s)];
        }
        for row in 0..sub {
            let mut acc = Complex::ZERO;
            for (col, g) in gathered.iter().enumerate() {
                acc += m[(row, col)] * *g;
            }
            amps[index_of(base, row)] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::c;

    fn random_amps(n: usize, seed: u64) -> Vec<Complex> {
        // Deterministic pseudo-random amplitudes without a dev-dependency.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..1 << n).map(|_| c(next(), next())).collect()
    }

    fn assert_matches_generic(n: usize, qubits: &[usize], m: &CMat, seed: u64) {
        let mut fast = random_amps(n, seed);
        let mut slow = fast.clone();
        match *qubits {
            [q] => apply_1q(&mut fast, n, q, m),
            [q0, q1] => apply_2q(&mut fast, n, q0, q1, m),
            _ => unreachable!(),
        }
        apply_gate_generic(&mut slow, n, qubits, m);
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert!((*a - *b).abs() < 1e-13, "n={n} qubits={qubits:?}");
        }
    }

    #[test]
    fn one_qubit_kernel_matches_generic() {
        let h = {
            let s = std::f64::consts::FRAC_1_SQRT_2;
            CMat::from_rows_f64(&[&[s, s], &[s, -s]])
        };
        for n in 1..=5 {
            for q in 0..n {
                assert_matches_generic(n, &[q], &h, 7 + q as u64);
            }
        }
    }

    #[test]
    fn one_qubit_diagonal_kernels_match_generic() {
        let rz = CMat::diag(&[Complex::cis(-0.4), Complex::cis(0.4)]);
        let phase = CMat::diag(&[Complex::ONE, Complex::cis(1.1)]);
        for m in [rz, phase] {
            for q in 0..4 {
                assert_matches_generic(4, &[q], &m, 11 + q as u64);
            }
        }
    }

    #[test]
    fn two_qubit_kernel_matches_generic_all_placements() {
        let m = CMat::from_fn(4, 4, |r, cc| c(0.13 * (r * 4 + cc) as f64, 0.07 * r as f64));
        for n in 2..=5 {
            for q0 in 0..n {
                for q1 in 0..n {
                    if q0 != q1 {
                        assert_matches_generic(n, &[q0, q1], &m, 17 + (q0 * 8 + q1) as u64);
                    }
                }
            }
        }
    }

    #[test]
    fn cz_and_zz_diagonals_match_generic() {
        let cz = CMat::diag(&[Complex::ONE, Complex::ONE, Complex::ONE, c(-1.0, 0.0)]);
        let zz = CMat::diag(&[
            Complex::cis(0.3),
            Complex::cis(-0.3),
            Complex::cis(-0.3),
            Complex::cis(0.3),
        ]);
        for m in [cz, zz] {
            for (q0, q1) in [(0, 1), (1, 0), (0, 3), (3, 1)] {
                assert_matches_generic(4, &[q0, q1], &m, 29 + (q0 * 8 + q1) as u64);
            }
        }
    }
}
