//! Specialized in-place statevector kernels for the hot gate arities.
//!
//! [`crate::circuit::apply_gate`] dispatches here: dedicated bit-twiddling
//! kernels for `k = 1` and `k = 2` gates (plus recognized diagonal and
//! controlled-phase special cases such as Rz, CZ, and ZZ), with the generic
//! gather/scatter path kept only as the `k ≥ 3` fallback. All kernels act on
//! raw amplitudes with qubit 0 as the most significant bit of the basis
//! index, matching `ashn-sim`.
//!
//! Every fast path is *lossless*: special cases trigger only on exact
//! structural zeros, and the differential suite in
//! `crates/sim/tests/kernels.rs` pins each kernel to the generic path at
//! `1e-12` on random unitaries and placements.
//!
//! Two kernel families live here:
//!
//! * the [`CMat`]-driven dispatchers ([`apply_1q`], [`apply_2q`]), which
//!   re-detect the structural case on every call — the right tool when a
//!   circuit is walked once;
//! * the `*_at` kernels over pre-classified data ([`apply_dense_1q_at`],
//!   [`apply_diag_2q_at`], [`apply_pauli_x_at`], …), which take **bit
//!   positions** (`p = n − 1 − qubit`) and stack matrices
//!   ([`Mat2`]/[`Mat4`]) or bare diagonal entries — the execution targets of
//!   `ashn_sim::plan::ExecPlan`'s compiled op stream. Each `*_at` kernel
//!   performs the same arithmetic in the same order as the matching branch
//!   of the dispatchers, so the two families agree bit-for-bit on the
//!   amplitudes they produce (up to the sign of exact zeros).
//!
//! Each `*_at` kernel also has a `*_range` form ([`apply_dense_1q_range`],
//! [`apply_diag_2q_range`], …) restricted to a `lo..hi` window of the
//! compressed index space (half-space for 1q/Pauli, quarter-space for 2q).
//! The full-space kernels delegate to them, and
//! `ashn_sim::ChunkPolicy`-driven chunked execution fans disjoint windows
//! across worker threads — same arithmetic, same order, bit-identical at
//! any worker count.
//!
//! The classification helpers ([`diagonal_of_1q`], [`diagonal_of_2q`],
//! [`pauli_of_1q`]) are the build-time half of that contract: they recognize
//! exactly the structural zeros the dispatchers test for.

use ashn_math::{c, CMat, Complex, Mat2, Mat4};

/// Inserts a zero bit at position `p`, shifting the higher bits up.
#[inline(always)]
fn insert_zero(x: usize, p: usize) -> usize {
    let low = (1usize << p) - 1;
    ((x & !low) << 1) | (x & low)
}

/// Applies a single-qubit unitary to `qubit` of an `n`-qubit register.
pub fn apply_1q(amps: &mut [Complex], n: usize, qubit: usize, m: &CMat) {
    debug_assert_eq!(amps.len(), 1 << n);
    debug_assert_eq!(m.rows(), 2);
    let p = n - 1 - qubit;
    let md = m.as_slice();
    let (m00, m01, m10, m11) = (md[0], md[1], md[2], md[3]);
    if m01 == Complex::ZERO && m10 == Complex::ZERO {
        return apply_diag_1q_at(amps, p, m00, m11);
    }
    dense_1q_range(amps, p, (m00, m01, m10, m11), 0, amps.len() >> 1);
}

/// The shared dense 1q core over compressed half-space indices `lo..hi`
/// (index `i` addresses the `i`-th basis pair with the target bit clear, in
/// ascending order). Both kernel families and the chunked multi-threaded
/// executor funnel here, so they are bit-identical by construction.
///
/// The loop is block-structured: within one "low block" the pair indices
/// `(j, j + bit)` walk *contiguous* memory, so the inner loop carries no
/// per-element bit-insertion dependency and unrolls/vectorizes cleanly.
#[inline(always)]
fn dense_1q_range(
    amps: &mut [Complex],
    p: usize,
    (m00, m01, m10, m11): (Complex, Complex, Complex, Complex),
    lo: usize,
    hi: usize,
) {
    let bit = 1usize << p;
    let mut i = lo;
    while i < hi {
        let run = (bit - (i & (bit - 1))).min(hi - i);
        let base = insert_zero(i, p);
        for j in base..base + run {
            let a = amps[j];
            let b = amps[j + bit];
            amps[j] = m00 * a + m01 * b;
            amps[j + bit] = m10 * a + m11 * b;
        }
        i += run;
    }
}

/// Diagonal single-qubit gate (Rz-like) at bit position `p`: pure
/// per-amplitude phases. When the `|0⟩` entry is exactly 1 (a phase gate),
/// only the set-bit half is touched.
#[inline]
pub fn apply_diag_1q_at(amps: &mut [Complex], p: usize, d0: Complex, d1: Complex) {
    apply_diag_1q_range(amps, p, d0, d1, 0, amps.len() >> 1);
}

/// [`apply_diag_1q_at`] restricted to compressed half-space indices
/// `lo..hi` — each index multiplies one clear-bit/set-bit amplitude pair by
/// `(d0, d1)`, exactly once, so any partition of the range reproduces the
/// full kernel bit for bit.
#[inline]
pub fn apply_diag_1q_range(
    amps: &mut [Complex],
    p: usize,
    d0: Complex,
    d1: Complex,
    lo: usize,
    hi: usize,
) {
    let bit = 1usize << p;
    let phase_gate = d0 == Complex::ONE;
    let mut i = lo;
    while i < hi {
        let run = (bit - (i & (bit - 1))).min(hi - i);
        let base = insert_zero(i, p);
        if phase_gate {
            for j in base..base + run {
                amps[j + bit] *= d1;
            }
        } else {
            for j in base..base + run {
                amps[j] *= d0;
                amps[j + bit] *= d1;
            }
        }
        i += run;
    }
}

/// Applies a two-qubit unitary to `(q0, q1)` of an `n`-qubit register
/// (`q0` is the most significant bit of the 4×4 matrix index).
pub fn apply_2q(amps: &mut [Complex], n: usize, q0: usize, q1: usize, m: &CMat) {
    debug_assert_eq!(amps.len(), 1 << n);
    debug_assert_eq!(m.rows(), 4);
    debug_assert_ne!(q0, q1);
    let p0 = n - 1 - q0;
    let p1 = n - 1 - q1;
    let md = m.as_slice();
    if is_diag_4(md) {
        return apply_diag_2q_at(amps, p0, p1, [md[0], md[5], md[10], md[15]]);
    }
    let sm = Mat4::try_from(m).expect("4x4 matrix");
    dense_2q_range(amps, p0, p1, &sm, 0, amps.len() >> 2);
}

/// The shared dense 2q core over compressed quarter-space indices `lo..hi`
/// (index `i` addresses the `i`-th basis quad with both target bits clear,
/// in ascending order) — the funnel for the dispatcher, the pre-classified
/// kernel, and the chunked multi-threaded executor.
///
/// Block-structured like [`dense_1q_range`]: within one low block the quad
/// base indices walk contiguous memory.
#[inline(always)]
fn dense_2q_range(amps: &mut [Complex], p0: usize, p1: usize, m: &Mat4, lo: usize, hi: usize) {
    let (b0, b1) = (1usize << p0, 1usize << p1);
    let (pl, ph) = if p0 < p1 { (p0, p1) } else { (p1, p0) };
    let bl = 1usize << pl;
    let mut i = lo;
    while i < hi {
        let run = (bl - (i & (bl - 1))).min(hi - i);
        let start = insert_zero(insert_zero(i, pl), ph);
        for base in start..start + run {
            let (i1, i2, i3) = (base | b1, base | b0, base | b0 | b1);
            let a0 = amps[base];
            let a1 = amps[i1];
            let a2 = amps[i2];
            let a3 = amps[i3];
            amps[base] = m[(0, 0)] * a0 + m[(0, 1)] * a1 + m[(0, 2)] * a2 + m[(0, 3)] * a3;
            amps[i1] = m[(1, 0)] * a0 + m[(1, 1)] * a1 + m[(1, 2)] * a2 + m[(1, 3)] * a3;
            amps[i2] = m[(2, 0)] * a0 + m[(2, 1)] * a1 + m[(2, 2)] * a2 + m[(2, 3)] * a3;
            amps[i3] = m[(3, 0)] * a0 + m[(3, 1)] * a1 + m[(3, 2)] * a2 + m[(3, 3)] * a3;
        }
        i += run;
    }
}

/// `true` when a row-major 4×4 matrix has exact zeros off the diagonal.
#[inline]
fn is_diag_4(md: &[Complex]) -> bool {
    for (i, v) in md.iter().enumerate() {
        if i % 5 != 0 && *v != Complex::ZERO {
            return false;
        }
    }
    true
}

/// Diagonal two-qubit gate (CZ / ZZ / controlled-phase) at bit positions
/// `(p0, p1)` (`p0` = high matrix bit): per-amplitude phases.
/// Controlled-phase gates (first three diagonal entries exactly 1, e.g. CZ)
/// dispatch to [`apply_cphase_at`], touching only the quarter of the state
/// with both bits set.
#[inline]
pub fn apply_diag_2q_at(amps: &mut [Complex], p0: usize, p1: usize, d: [Complex; 4]) {
    if d[0] == Complex::ONE && d[1] == Complex::ONE && d[2] == Complex::ONE {
        return apply_cphase_at(amps, p0, p1, d[3]);
    }
    apply_diag_2q_range(amps, p0, p1, d, 0, amps.len() >> 2);
}

/// [`apply_diag_2q_at`]'s general branch restricted to compressed
/// quarter-space indices `lo..hi` — each index multiplies one basis quad by
/// the four diagonal entries, exactly once.
#[inline]
pub fn apply_diag_2q_range(
    amps: &mut [Complex],
    p0: usize,
    p1: usize,
    d: [Complex; 4],
    lo: usize,
    hi: usize,
) {
    let (b0, b1) = (1usize << p0, 1usize << p1);
    let (pl, ph) = if p0 < p1 { (p0, p1) } else { (p1, p0) };
    let bl = 1usize << pl;
    let mut i = lo;
    while i < hi {
        let run = (bl - (i & (bl - 1))).min(hi - i);
        let start = insert_zero(insert_zero(i, pl), ph);
        for base in start..start + run {
            amps[base] *= d[0];
            amps[base | b1] *= d[1];
            amps[base | b0] *= d[2];
            amps[base | b0 | b1] *= d[3];
        }
        i += run;
    }
}

/// Controlled-phase gate (diag `[1, 1, 1, phase]`, e.g. CZ) at bit
/// positions `(p0, p1)`: multiplies the both-bits-set quarter by `phase`.
#[inline]
pub fn apply_cphase_at(amps: &mut [Complex], p0: usize, p1: usize, phase: Complex) {
    apply_cphase_range(amps, p0, p1, phase, 0, amps.len() >> 2);
}

/// [`apply_cphase_at`] restricted to compressed quarter-space indices
/// `lo..hi`.
#[inline]
pub fn apply_cphase_range(
    amps: &mut [Complex],
    p0: usize,
    p1: usize,
    phase: Complex,
    lo: usize,
    hi: usize,
) {
    let (b0, b1) = (1usize << p0, 1usize << p1);
    let (pl, ph) = if p0 < p1 { (p0, p1) } else { (p1, p0) };
    let bl = 1usize << pl;
    let mut i = lo;
    while i < hi {
        let run = (bl - (i & (bl - 1))).min(hi - i);
        let start = insert_zero(insert_zero(i, pl), ph) | b0 | b1;
        for a in &mut amps[start..start + run] {
            *a *= phase;
        }
        i += run;
    }
}

/// Dense single-qubit unitary at bit position `p`, matrix inlined as a
/// stack [`Mat2`] — the pre-classified counterpart of [`apply_1q`]'s dense
/// branch (same arithmetic, same order).
#[inline]
pub fn apply_dense_1q_at(amps: &mut [Complex], p: usize, m: &Mat2) {
    apply_dense_1q_range(amps, p, m, 0, amps.len() >> 1);
}

/// [`apply_dense_1q_at`] restricted to compressed half-space indices
/// `lo..hi` (index `i` addresses the `i`-th clear-bit/set-bit amplitude
/// pair, in ascending order): the unit the chunked multi-threaded executor
/// partitions. Any partition of `0..len/2` reproduces the full kernel bit
/// for bit, because each pair is read and written exactly once with the
/// same arithmetic.
#[inline]
pub fn apply_dense_1q_range(amps: &mut [Complex], p: usize, m: &Mat2, lo: usize, hi: usize) {
    dense_1q_range(
        amps,
        p,
        (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]),
        lo,
        hi,
    );
}

/// Dense two-qubit unitary at bit positions `(p0, p1)` (`p0` = high matrix
/// bit), matrix inlined as a stack [`Mat4`] — the pre-classified
/// counterpart of [`apply_2q`]'s dense branch (same arithmetic, same
/// order).
#[inline]
pub fn apply_dense_2q_at(amps: &mut [Complex], p0: usize, p1: usize, m: &Mat4) {
    apply_dense_2q_range(amps, p0, p1, m, 0, amps.len() >> 2);
}

/// [`apply_dense_2q_at`] restricted to compressed quarter-space indices
/// `lo..hi` (index `i` addresses the `i`-th both-bits-clear basis quad, in
/// ascending order) — the partition unit for chunked multi-threading.
#[inline]
pub fn apply_dense_2q_range(
    amps: &mut [Complex],
    p0: usize,
    p1: usize,
    m: &Mat4,
    lo: usize,
    hi: usize,
) {
    dense_2q_range(amps, p0, p1, m, lo, hi);
}

/// Pauli `X` at bit position `p`: swaps the paired amplitudes — no complex
/// arithmetic at all.
#[inline]
pub fn apply_pauli_x_at(amps: &mut [Complex], p: usize) {
    apply_pauli_x_range(amps, p, 0, amps.len() >> 1);
}

/// [`apply_pauli_x_at`] restricted to compressed half-space indices
/// `lo..hi`.
#[inline]
pub fn apply_pauli_x_range(amps: &mut [Complex], p: usize, lo: usize, hi: usize) {
    let bit = 1usize << p;
    let mut i = lo;
    while i < hi {
        let run = (bit - (i & (bit - 1))).min(hi - i);
        let base = insert_zero(i, p);
        for j in base..base + run {
            amps.swap(j, j | bit);
        }
        i += run;
    }
}

/// Pauli `Y` at bit position `p`: `(a, b) → (−i·b, i·a)` on each pair,
/// computed by component shuffles instead of complex multiplication.
#[inline]
pub fn apply_pauli_y_at(amps: &mut [Complex], p: usize) {
    apply_pauli_y_range(amps, p, 0, amps.len() >> 1);
}

/// [`apply_pauli_y_at`] restricted to compressed half-space indices
/// `lo..hi`.
#[inline]
pub fn apply_pauli_y_range(amps: &mut [Complex], p: usize, lo: usize, hi: usize) {
    let bit = 1usize << p;
    let mut i = lo;
    while i < hi {
        let run = (bit - (i & (bit - 1))).min(hi - i);
        let base = insert_zero(i, p);
        for j in base..base + run {
            let a = amps[j];
            let b = amps[j | bit];
            amps[j] = c(b.im, -b.re);
            amps[j | bit] = c(-a.im, a.re);
        }
        i += run;
    }
}

/// Pauli `Z` at bit position `p`: negates the set-bit half.
#[inline]
pub fn apply_pauli_z_at(amps: &mut [Complex], p: usize) {
    apply_pauli_z_range(amps, p, 0, amps.len() >> 1);
}

/// [`apply_pauli_z_at`] restricted to compressed half-space indices
/// `lo..hi`.
#[inline]
pub fn apply_pauli_z_range(amps: &mut [Complex], p: usize, lo: usize, hi: usize) {
    let bit = 1usize << p;
    let mut i = lo;
    while i < hi {
        let run = (bit - (i & (bit - 1))).min(hi - i);
        let base = insert_zero(i, p) | bit;
        for a in &mut amps[base..base + run] {
            *a = -*a;
        }
        i += run;
    }
}

/// A non-identity single-qubit Pauli, with its dedicated in-place kernel —
/// the unit trajectory noise injection is built from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pauli {
    /// Bit flip.
    X,
    /// Bit-and-phase flip.
    Y,
    /// Phase flip.
    Z,
}

impl Pauli {
    /// Applies this Pauli at bit position `p` via its bit-twiddled kernel.
    #[inline]
    pub fn apply_at(self, amps: &mut [Complex], p: usize) {
        match self {
            Pauli::X => apply_pauli_x_at(amps, p),
            Pauli::Y => apply_pauli_y_at(amps, p),
            Pauli::Z => apply_pauli_z_at(amps, p),
        }
    }
}

/// The diagonal of a single-qubit matrix when its off-diagonals are *exact*
/// structural zeros — the same trigger [`apply_1q`] tests before taking its
/// diagonal branch.
#[inline]
pub fn diagonal_of_1q(m: &Mat2) -> Option<(Complex, Complex)> {
    if m[(0, 1)] == Complex::ZERO && m[(1, 0)] == Complex::ZERO {
        Some((m[(0, 0)], m[(1, 1)]))
    } else {
        None
    }
}

/// The diagonal of a two-qubit matrix when all off-diagonals are *exact*
/// structural zeros — the same trigger [`apply_2q`] tests before taking its
/// diagonal branch.
#[inline]
pub fn diagonal_of_2q(m: &Mat4) -> Option<[Complex; 4]> {
    for r in 0..4 {
        for cc in 0..4 {
            if r != cc && m[(r, cc)] != Complex::ZERO {
                return None;
            }
        }
    }
    Some([m[(0, 0)], m[(1, 1)], m[(2, 2)], m[(3, 3)]])
}

/// Recognizes a matrix that is *exactly* a non-identity Pauli (entrywise
/// equality, no tolerance), so plan compilation can swap the dense kernel
/// for the bit-twiddled [`Pauli`] one.
pub fn pauli_of_1q(m: &Mat2) -> Option<Pauli> {
    let x = Mat2::from_rows([[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]);
    let y = Mat2::from_rows([[Complex::ZERO, c(0.0, -1.0)], [c(0.0, 1.0), Complex::ZERO]]);
    let z = Mat2::from_rows([[Complex::ONE, Complex::ZERO], [Complex::ZERO, c(-1.0, 0.0)]]);
    if *m == x {
        Some(Pauli::X)
    } else if *m == y {
        Some(Pauli::Y)
    } else if *m == z {
        Some(Pauli::Z)
    } else {
        None
    }
}

/// The generic `k`-qubit gather/scatter kernel: correct for any arity, used
/// as the dispatch fallback for `k ≥ 3` and as the reference implementation
/// the fast kernels are differentially tested against.
pub fn apply_gate_generic(amps: &mut [Complex], n: usize, qubits: &[usize], m: &CMat) {
    let k = qubits.len();
    debug_assert_eq!(amps.len(), 1 << n);
    debug_assert_eq!(m.rows(), 1 << k);
    let pos: Vec<usize> = qubits.iter().map(|q| n - 1 - q).collect();
    let targets_mask: usize = pos.iter().map(|p| 1usize << p).sum();
    let dim = 1usize << n;
    let sub = 1usize << k;
    let mut gathered = vec![Complex::ZERO; sub];
    let index_of = |base: usize, s: usize| -> usize {
        let mut idx = base;
        for (j, p) in pos.iter().enumerate() {
            if s >> (k - 1 - j) & 1 == 1 {
                idx |= 1 << p;
            }
        }
        idx
    };
    for base in 0..dim {
        if base & targets_mask != 0 {
            continue;
        }
        for (s, g) in gathered.iter_mut().enumerate() {
            *g = amps[index_of(base, s)];
        }
        for row in 0..sub {
            let mut acc = Complex::ZERO;
            for (col, g) in gathered.iter().enumerate() {
                acc += m[(row, col)] * *g;
            }
            amps[index_of(base, row)] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ashn_math::c;

    fn random_amps(n: usize, seed: u64) -> Vec<Complex> {
        // Deterministic pseudo-random amplitudes without a dev-dependency.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..1 << n).map(|_| c(next(), next())).collect()
    }

    fn assert_matches_generic(n: usize, qubits: &[usize], m: &CMat, seed: u64) {
        let mut fast = random_amps(n, seed);
        let mut slow = fast.clone();
        match *qubits {
            [q] => apply_1q(&mut fast, n, q, m),
            [q0, q1] => apply_2q(&mut fast, n, q0, q1, m),
            _ => unreachable!(),
        }
        apply_gate_generic(&mut slow, n, qubits, m);
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert!((*a - *b).abs() < 1e-13, "n={n} qubits={qubits:?}");
        }
    }

    #[test]
    fn one_qubit_kernel_matches_generic() {
        let h = {
            let s = std::f64::consts::FRAC_1_SQRT_2;
            CMat::from_rows_f64(&[&[s, s], &[s, -s]])
        };
        for n in 1..=5 {
            for q in 0..n {
                assert_matches_generic(n, &[q], &h, 7 + q as u64);
            }
        }
    }

    #[test]
    fn one_qubit_diagonal_kernels_match_generic() {
        let rz = CMat::diag(&[Complex::cis(-0.4), Complex::cis(0.4)]);
        let phase = CMat::diag(&[Complex::ONE, Complex::cis(1.1)]);
        for m in [rz, phase] {
            for q in 0..4 {
                assert_matches_generic(4, &[q], &m, 11 + q as u64);
            }
        }
    }

    #[test]
    fn two_qubit_kernel_matches_generic_all_placements() {
        let m = CMat::from_fn(4, 4, |r, cc| c(0.13 * (r * 4 + cc) as f64, 0.07 * r as f64));
        for n in 2..=5 {
            for q0 in 0..n {
                for q1 in 0..n {
                    if q0 != q1 {
                        assert_matches_generic(n, &[q0, q1], &m, 17 + (q0 * 8 + q1) as u64);
                    }
                }
            }
        }
    }

    #[test]
    fn pauli_kernels_match_the_dense_path_exactly() {
        let mats = [
            CMat::from_rows_f64(&[&[0.0, 1.0], &[1.0, 0.0]]),
            CMat::from_rows(&[
                &[Complex::ZERO, c(0.0, -1.0)],
                &[c(0.0, 1.0), Complex::ZERO],
            ]),
            CMat::diag(&[Complex::ONE, c(-1.0, 0.0)]),
        ];
        for n in 1..=5 {
            for q in 0..n {
                for (which, m) in mats.iter().enumerate() {
                    let mut fast = random_amps(n, 91 + (n * 8 + q) as u64);
                    let mut slow = fast.clone();
                    let p = n - 1 - q;
                    match which {
                        0 => apply_pauli_x_at(&mut fast, p),
                        1 => apply_pauli_y_at(&mut fast, p),
                        _ => apply_pauli_z_at(&mut fast, p),
                    }
                    apply_1q(&mut slow, n, q, m);
                    for (a, b) in fast.iter().zip(slow.iter()) {
                        assert!((*a - *b).abs() < 1e-15, "pauli {which} n={n} q={q}");
                    }
                }
            }
        }
    }

    #[test]
    fn preclassified_dense_kernels_are_bit_identical_to_dispatch() {
        let m1 = CMat::from_fn(2, 2, |r, cc| c(0.3 * (r + 1) as f64, 0.2 * cc as f64 - 0.1));
        let m2 = CMat::from_fn(4, 4, |r, cc| c(0.13 * (r * 4 + cc) as f64, 0.07 * r as f64));
        let s1 = Mat2::try_from(&m1).unwrap();
        let s2 = Mat4::try_from(&m2).unwrap();
        let n = 5;
        for q in 0..n {
            let mut fast = random_amps(n, 131 + q as u64);
            let mut slow = fast.clone();
            apply_dense_1q_at(&mut fast, n - 1 - q, &s1);
            apply_1q(&mut slow, n, q, &m1);
            for (a, b) in fast.iter().zip(slow.iter()) {
                assert!(a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits());
            }
        }
        for (q0, q1) in [(0, 1), (1, 0), (0, 4), (3, 1)] {
            let mut fast = random_amps(n, 137 + (q0 * 8 + q1) as u64);
            let mut slow = fast.clone();
            apply_dense_2q_at(&mut fast, n - 1 - q0, n - 1 - q1, &s2);
            apply_2q(&mut slow, n, q0, q1, &m2);
            for (a, b) in fast.iter().zip(slow.iter()) {
                assert!(a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits());
            }
        }
    }

    #[test]
    fn classification_helpers_recognize_structural_cases() {
        let rz = Mat2::diag([Complex::cis(-0.4), Complex::cis(0.4)]);
        assert_eq!(
            diagonal_of_1q(&rz),
            Some((Complex::cis(-0.4), Complex::cis(0.4)))
        );
        let h = {
            let s = std::f64::consts::FRAC_1_SQRT_2;
            Mat2::from_rows([[c(s, 0.0), c(s, 0.0)], [c(s, 0.0), c(-s, 0.0)]])
        };
        assert_eq!(diagonal_of_1q(&h), None);
        assert_eq!(pauli_of_1q(&h), None);
        let x = Mat2::from_rows([[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]);
        assert_eq!(pauli_of_1q(&x), Some(Pauli::X));
        let z = Mat2::diag([Complex::ONE, c(-1.0, 0.0)]);
        assert_eq!(pauli_of_1q(&z), Some(Pauli::Z));
        let cz = Mat4::diag([Complex::ONE, Complex::ONE, Complex::ONE, c(-1.0, 0.0)]);
        assert_eq!(
            diagonal_of_2q(&cz),
            Some([Complex::ONE, Complex::ONE, Complex::ONE, c(-1.0, 0.0)])
        );
        let mut dense = cz;
        dense[(0, 3)] = c(1e-300, 0.0); // any nonzero kills the diagonal case
        assert_eq!(diagonal_of_2q(&dense), None);
    }

    #[test]
    fn cz_and_zz_diagonals_match_generic() {
        let cz = CMat::diag(&[Complex::ONE, Complex::ONE, Complex::ONE, c(-1.0, 0.0)]);
        let zz = CMat::diag(&[
            Complex::cis(0.3),
            Complex::cis(-0.3),
            Complex::cis(-0.3),
            Complex::cis(0.3),
        ]);
        for m in [cz, zz] {
            for (q0, q1) in [(0, 1), (1, 0), (0, 3), (3, 1)] {
                assert_matches_generic(4, &[q0, q1], &m, 29 + (q0 * 8 + q1) as u64);
            }
        }
    }
}
