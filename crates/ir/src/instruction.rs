//! The single canonical gate representation.

use crate::error::IrError;
use ashn_math::CMat;

/// One gate instance: the unitary, the acted-on qubits (big-endian order
/// w.r.t. the matrix), a duration in units of `1/g`, and an optional
/// per-gate depolarizing error rate.
///
/// This type subsumes the former `ashn_sim::Gate` and `ashn_synth::NGate`.
#[derive(Clone, Debug)]
pub struct Instruction {
    /// Qubits the gate acts on (big-endian order w.r.t. the matrix).
    pub qubits: Vec<usize>,
    /// The unitary matrix (dimension `2^qubits.len()`).
    pub matrix: CMat,
    /// Human-readable label (e.g. `"CZ"`, `"AshN[ND]"`).
    pub label: String,
    /// Gate duration in units of `1/g`; `0` for virtual gates.
    pub duration: f64,
    /// Depolarizing error probability applied after the gate; `None` means
    /// "use the noise-model default for this arity".
    pub error_rate: Option<f64>,
}

impl Instruction {
    /// Creates an instruction, validating dimensions and qubit uniqueness.
    ///
    /// # Errors
    ///
    /// [`IrError::NonSquare`], [`IrError::DimensionMismatch`], or
    /// [`IrError::RepeatedQubit`] on a malformed gate.
    pub fn try_new(
        qubits: Vec<usize>,
        matrix: CMat,
        label: impl Into<String>,
    ) -> Result<Self, IrError> {
        if !matrix.is_square() {
            return Err(IrError::NonSquare {
                rows: matrix.rows(),
                cols: matrix.cols(),
            });
        }
        if matrix.rows() != 1 << qubits.len() {
            return Err(IrError::DimensionMismatch {
                qubits: qubits.len(),
                rows: matrix.rows(),
            });
        }
        for (i, q) in qubits.iter().enumerate() {
            if qubits[i + 1..].contains(q) {
                return Err(IrError::RepeatedQubit { qubit: *q });
            }
        }
        Ok(Self {
            qubits,
            matrix,
            label: label.into(),
            duration: 0.0,
            error_rate: None,
        })
    }

    /// Creates an instruction with no duration or error annotation.
    ///
    /// Convenience wrapper over [`Instruction::try_new`] for statically
    /// well-formed gates (tests, literals); library synthesis paths use
    /// `try_new` and propagate [`IrError`] instead.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or repeated qubits.
    pub fn new(qubits: Vec<usize>, matrix: CMat, label: impl Into<String>) -> Self {
        match Self::try_new(qubits, matrix, label) {
            Ok(i) => i,
            Err(e) => panic!("{e}"),
        }
    }

    /// Sets the duration (builder style).
    #[must_use]
    pub fn with_duration(mut self, duration: f64) -> Self {
        self.duration = duration;
        self
    }

    /// Sets an explicit error rate (builder style).
    #[must_use]
    pub fn with_error_rate(mut self, p: f64) -> Self {
        self.error_rate = Some(p);
        self
    }

    /// `true` when the gate acts on two or more qubits.
    pub fn is_entangler(&self) -> bool {
        self.qubits.len() >= 2
    }

    /// `true` when the gate matrix is diagonal (within `tol`, Frobenius).
    pub fn is_diagonal(&self, tol: f64) -> bool {
        let m = &self.matrix;
        let mut off = 0.0;
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                if r != c {
                    off += m[(r, c)].norm_sqr();
                }
            }
        }
        off.sqrt() < tol
    }

    /// The instruction relabeled onto new qubit indices via `targets`
    /// (`targets[q]` = new index of source qubit `q`).
    ///
    /// # Errors
    ///
    /// [`IrError::QubitOutOfRange`] when a source qubit has no target.
    pub fn remapped(&self, targets: &[usize]) -> Result<Instruction, IrError> {
        let qubits = self
            .qubits
            .iter()
            .map(|&q| {
                targets.get(q).copied().ok_or(IrError::QubitOutOfRange {
                    qubit: q,
                    n: targets.len(),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut out = Instruction::try_new(qubits, self.matrix.clone(), self.label.clone())?;
        out.duration = self.duration;
        out.error_rate = self.error_rate;
        Ok(out)
    }
}
