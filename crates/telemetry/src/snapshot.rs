//! Snapshot types and exporters — compiled identically with the
//! `telemetry` feature on or off (an inert registry just produces empty
//! snapshots).
//!
//! Serialization is hand-rolled in the same spirit as
//! `ashn_service::persist`: no serde, deterministic field order (names
//! sorted), and every renderer is a pure function of the snapshot so the
//! text/JSON/Prometheus views can never disagree with each other.

use std::fmt::Write as _;

/// Number of latency buckets: bucket 0 holds sub-microsecond samples,
/// bucket `i ≥ 1` holds `[2^(i-1), 2^i)` microseconds, and the last
/// bucket is unbounded above (2^22 µs ≈ 4.2 s — the log2 µs→s range).
pub const HISTOGRAM_BUCKETS: usize = 24;

/// Upper bound (inclusive `le`) of bucket `i`, in microseconds;
/// `None` for the final unbounded bucket.
pub fn bucket_upper_us(i: usize) -> Option<u64> {
    if i + 1 >= HISTOGRAM_BUCKETS {
        None
    } else {
        Some(1u64 << i)
    }
}

/// The bucket a sample of `ns` nanoseconds falls into.
pub fn bucket_of_ns(ns: u64) -> usize {
    let us = ns / 1_000;
    if us == 0 {
        return 0;
    }
    // us in [2^(i-1), 2^i) → bucket i; i = bit length of us.
    let bits = (64 - us.leading_zeros()) as usize;
    bits.min(HISTOGRAM_BUCKETS - 1)
}

/// One structured journal field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned counter-like value.
    U64(u64),
    /// Signed value.
    I64(i64),
    /// Floating-point value.
    F64(f64),
    /// Short label.
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

/// One event in the bounded journal — the flight-recorder record for
/// chaos-run replay.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Monotonic nanoseconds since the owning registry was created.
    pub ts_ns: u64,
    /// The span (or event) name.
    pub span: String,
    /// Structured fields, in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

/// Field names masked by [`EventRecord::masked_line`]: anything
/// wall-clock-derived, so zero-fault runs render identically at any
/// worker count.
const MASKED_FIELDS: &[&str] = &["duration_us", "wall_ms"];

impl EventRecord {
    /// Deterministic one-line rendering with the timestamp (and any
    /// wall-clock-derived field) masked — what the worker-count
    /// determinism suites compare.
    pub fn masked_line(&self) -> String {
        let mut line = self.span.clone();
        for (k, v) in &self.fields {
            if MASKED_FIELDS.contains(&k.as_str()) {
                let _ = write!(line, " {k}=<masked>");
            } else {
                let _ = write!(line, " {k}={v}");
            }
        }
        line
    }
}

/// Point-in-time value of one counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registered name (dot-separated, e.g. `cache.lookup.exact`).
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// Point-in-time state of one latency histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered name (dot-separated, e.g. `service.cold_synth`).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_ns: u64,
    /// Smallest sample, nanoseconds (0 when empty).
    pub min_ns: u64,
    /// Largest sample, nanoseconds (0 when empty).
    pub max_ns: u64,
    /// Per-bucket sample counts (see [`bucket_upper_us`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean sample in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / 1e3
        }
    }
}

/// A serde-free snapshot of a registry: every counter and histogram,
/// sorted by name, plus journal occupancy.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Events currently retained in the journal.
    pub journal_len: usize,
    /// Events discarded because the journal ring was full.
    pub journal_dropped: u64,
}

/// Escapes a string for embedding in a JSON double-quoted literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Prometheus metric-name mangling: dots and any other non-identifier
/// character become underscores, and everything gets an `ashn_` prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("ashn_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

impl TelemetrySnapshot {
    /// The value of a counter by name, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// A histogram by name, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Human-readable report: counters first, then histogram summaries.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "telemetry snapshot");
        let _ = writeln!(
            out,
            "  journal: {} event(s) retained, {} dropped",
            self.journal_len, self.journal_dropped
        );
        if !self.counters.is_empty() {
            let _ = writeln!(out, "  counters:");
            let width = self
                .counters
                .iter()
                .map(|c| c.name.len())
                .max()
                .unwrap_or(0);
            for c in &self.counters {
                let _ = writeln!(out, "    {:width$}  {}", c.name, c.value);
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "  histograms (count / mean / min / max, µs):");
            let width = self
                .histograms
                .iter()
                .map(|h| h.name.len())
                .max()
                .unwrap_or(0);
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "    {:width$}  {:>8}  {:>10.1}  {:>10.1}  {:>10.1}",
                    h.name,
                    h.count,
                    h.mean_us(),
                    h.min_ns as f64 / 1e3,
                    h.max_ns as f64 / 1e3,
                );
            }
        }
        out
    }

    /// Machine-readable JSON rendering (hand-rolled, stable field order).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", json_escape(&c.name), c.value);
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{ \"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}, \"buckets\": [",
                json_escape(&h.name),
                h.count,
                h.sum_ns,
                h.min_ns,
                h.max_ns
            );
            for (j, b) in h.buckets.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}{b}");
            }
            out.push_str("] }");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "}},\n  \"journal\": {{ \"len\": {}, \"dropped\": {} }}\n}}\n",
            self.journal_len, self.journal_dropped
        );
        out
    }

    /// Prometheus exposition-format rendering: counters as `counter`
    /// metrics, histograms as cumulative-`le` `histogram` metrics with
    /// seconds-valued `_sum` (the Prometheus convention).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let name = prom_name(&c.name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.value);
        }
        for h in &self.histograms {
            let name = prom_name(&h.name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                cumulative += b;
                match bucket_upper_us(i) {
                    // `le` in seconds, to match the `_sum` unit.
                    Some(us) => {
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{le=\"{}\"}} {cumulative}",
                            us as f64 / 1e6
                        );
                    }
                    None => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    }
                }
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum_ns as f64 / 1e9);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2_in_microseconds() {
        assert_eq!(bucket_of_ns(0), 0);
        assert_eq!(bucket_of_ns(999), 0); // sub-µs
        assert_eq!(bucket_of_ns(1_000), 1); // 1 µs → [1, 2)
        assert_eq!(bucket_of_ns(1_999), 1);
        assert_eq!(bucket_of_ns(2_000), 2); // [2, 4)
        assert_eq!(bucket_of_ns(1_000_000), 10); // 1 ms → [512, 1024) µs
        assert_eq!(bucket_of_ns(1_000_000_000), 20); // 1 s → [0.52, 1.05) s
        assert_eq!(bucket_of_ns(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_us(0), Some(1));
        assert_eq!(bucket_upper_us(1), Some(2));
        assert_eq!(bucket_upper_us(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn masked_line_hides_wall_clock_fields() {
        let e = EventRecord {
            ts_ns: 123,
            span: "service.serve".into(),
            fields: vec![
                ("targets".into(), FieldValue::U64(7)),
                ("duration_us".into(), FieldValue::F64(88.5)),
            ],
        };
        assert_eq!(
            e.masked_line(),
            "service.serve targets=7 duration_us=<masked>"
        );
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prom_name("cache.lookup.exact"), "ashn_cache_lookup_exact");
        assert_eq!(prom_name("opt.pass.Merge1q"), "ashn_opt_pass_Merge1q");
    }
}
