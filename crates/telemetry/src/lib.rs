//! # ashn-telemetry
//!
//! Zero-dependency tracing, metrics, and profiling for the AshN stack:
//! a process-wide [`Registry`] of lock-free atomic counters and log2
//! latency histograms, RAII [`Span`] timers (via the [`span!`] macro),
//! and a bounded structured event journal — the flight recorder replayed
//! by the chaos suites.
//!
//! ```
//! let reg = ashn_telemetry::Registry::new();
//! let _guard = ashn_telemetry::install(&reg); // thread-local override
//! {
//!     let _s = ashn_telemetry::span!("synth.ea_multistart");
//!     ashn_telemetry::current().add("cache.lookup.exact", 1);
//! }
//! let snap = reg.snapshot();
//! # #[cfg(feature = "telemetry")]
//! assert_eq!(snap.counter("cache.lookup.exact"), Some(1));
//! println!("{}", snap.render_prometheus());
//! ```
//!
//! Everything routes through [`current()`]: the innermost registry
//! [`install`]ed on this thread, else the process-wide [`global()`] one.
//! Worker pools ([`ashn_core::par`], `BatchRunner`) capture the caller's
//! current registry and re-install it on their worker threads, so batch
//! telemetry lands in one place regardless of the worker count.
//!
//! With the `telemetry` cargo feature disabled (default on), the same API
//! compiles to zero-sized no-ops: spans cost nothing, counters vanish,
//! snapshots are empty. Call sites never need `cfg` guards.

pub mod snapshot;

pub use snapshot::{
    CounterSnapshot, EventRecord, FieldValue, HistogramSnapshot, TelemetrySnapshot,
    HISTOGRAM_BUCKETS,
};

/// Opens a [`Span`] on the [`current()`] registry; the timer records into
/// the span's histogram when the returned guard drops.
///
/// ```
/// let _s = ashn_telemetry::span!("service.cold_synth");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::current().span($name)
    };
}

/// Environment variable overriding the journal ring capacity (default
/// 4096 events; `0` disables the journal). Read once per registry, at
/// construction.
pub const JOURNAL_ENV: &str = "ASHN_TELEMETRY_JOURNAL";

/// Default journal ring capacity when [`JOURNAL_ENV`] is unset.
pub const JOURNAL_DEFAULT_CAPACITY: usize = 4096;

#[cfg(feature = "telemetry")]
mod active;
#[cfg(feature = "telemetry")]
pub use active::{current, global, install, Counter, CurrentGuard, Histogram, Registry, Span};

#[cfg(not(feature = "telemetry"))]
mod inert;
#[cfg(not(feature = "telemetry"))]
pub use inert::{current, global, install, Counter, CurrentGuard, Histogram, Registry, Span};
