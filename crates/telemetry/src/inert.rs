//! No-op mirror of [`crate::active`] — compiled when the `telemetry`
//! feature is off. Every type is zero-sized and every method is an empty
//! inline body, so instrumented call sites optimize away entirely and
//! never need `cfg` guards.

use crate::snapshot::{EventRecord, FieldValue, TelemetrySnapshot};

/// Inert counter: accepts adds, stores nothing.
#[derive(Clone, Copy, Default)]
pub struct Counter;

impl Counter {
    /// No-op.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn inc(&self) {}

    /// Always zero.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// Inert histogram: accepts samples, stores nothing.
#[derive(Clone, Copy, Default)]
pub struct Histogram;

impl Histogram {
    /// No-op.
    #[inline(always)]
    pub fn record_ns(&self, _ns: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn record(&self, _d: std::time::Duration) {}
}

/// Inert span: no timer, records nothing on drop.
#[must_use = "a span records its timing when dropped; binding it to `_` drops immediately"]
#[derive(Default)]
pub struct Span;

impl Span {
    /// Always zero.
    #[inline(always)]
    pub fn elapsed_ns(&self) -> u64 {
        0
    }
}

/// Inert registry: same API as the active one, all storage elided.
#[derive(Clone, Copy, Default)]
pub struct Registry;

impl Registry {
    /// An inert registry.
    #[inline(always)]
    pub fn new() -> Self {
        Registry
    }

    /// An inert registry (capacity ignored).
    #[inline(always)]
    pub fn with_journal_capacity(_capacity: usize) -> Self {
        Registry
    }

    /// No-op.
    #[inline(always)]
    pub fn set_enabled(&self, _on: bool) {}

    /// Always false.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        false
    }

    /// An inert counter.
    #[inline(always)]
    pub fn counter(&self, _name: &str) -> Counter {
        Counter
    }

    /// No-op.
    #[inline(always)]
    pub fn add(&self, _name: &str, _n: u64) {}

    /// An inert histogram.
    #[inline(always)]
    pub fn histogram(&self, _name: &str) -> Histogram {
        Histogram
    }

    /// No-op.
    #[inline(always)]
    pub fn record_ns(&self, _name: &str, _ns: u64) {}

    /// An inert span.
    #[inline(always)]
    pub fn span(&self, _name: &str) -> Span {
        Span
    }

    /// No-op.
    #[inline(always)]
    pub fn event(&self, _span: &str, _fields: &[(&str, FieldValue)]) {}

    /// Always the empty snapshot.
    #[inline(always)]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::default()
    }

    /// Always empty.
    #[inline(always)]
    pub fn journal_snapshot(&self) -> Vec<EventRecord> {
        Vec::new()
    }

    /// No-op.
    #[inline(always)]
    pub fn clear_journal(&self) {}
}

/// The inert process-wide registry.
#[inline(always)]
pub fn global() -> Registry {
    Registry
}

/// Always the inert registry.
#[inline(always)]
pub fn current() -> Registry {
    Registry
}

/// No-op install; the guard is zero-sized.
#[inline(always)]
pub fn install(_reg: &Registry) -> CurrentGuard {
    CurrentGuard
}

/// Zero-sized guard returned by [`install`].
pub struct CurrentGuard;
