//! The real registry — compiled when the `telemetry` feature is on.
//!
//! Counters and histograms are plain atomics behind `Arc`s: the handle
//! types ([`Counter`], [`Histogram`]) are cheap to clone and record with
//! relaxed ordering, so hot loops pay one atomic RMW per bulk update.
//! Name→handle resolution goes through an `RwLock<HashMap>` and is meant
//! to happen once per batch/span, not per iteration.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use crate::snapshot::{
    bucket_of_ns, CounterSnapshot, EventRecord, FieldValue, HistogramSnapshot, TelemetrySnapshot,
    HISTOGRAM_BUCKETS,
};

/// Core storage for one histogram: count/sum/min/max plus log2 buckets,
/// all relaxed atomics (totals are exact; cross-field consistency is only
/// read at snapshot time, where small skew between `count` and `sum` from
/// in-flight recordings is acceptable).
struct HistCore {
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl HistCore {
    fn new() -> Self {
        HistCore {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.buckets[bucket_of_ns(ns)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min_ns.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 || min == u64::MAX {
                0
            } else {
                min
            },
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

struct Journal {
    ring: VecDeque<EventRecord>,
    capacity: usize,
    dropped: u64,
}

struct Inner {
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<String, Arc<HistCore>>>,
    journal: Mutex<Journal>,
    enabled: AtomicBool,
    birth: Instant,
}

/// A handle to one named counter. Cloneable, lock-free to update.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    reg: Registry,
}

impl Counter {
    /// Adds `n` to the counter (no-op while the registry is disabled).
    pub fn add(&self, n: u64) {
        if self.reg.enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A handle to one named latency histogram. Cloneable, lock-free to
/// record into.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistCore>,
    reg: Registry,
}

impl Histogram {
    /// Records one sample of `ns` nanoseconds (no-op while disabled).
    pub fn record_ns(&self, ns: u64) {
        if self.reg.enabled() {
            self.core.record_ns(ns);
        }
    }

    /// Records one [`std::time::Duration`] sample.
    pub fn record(&self, d: std::time::Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }
}

/// RAII span timer: measures from construction to drop and records the
/// elapsed time into the named histogram of the registry it came from.
#[must_use = "a span records its timing when dropped; binding it to `_` drops immediately"]
pub struct Span {
    hist: Histogram,
    start: Instant,
}

impl Span {
    /// Nanoseconds elapsed since the span opened.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record_ns(self.elapsed_ns());
    }
}

/// A process- or scope-level metrics registry: named counters, named
/// latency histograms, and a bounded structured event journal.
///
/// Cloning is cheap (one `Arc`); clones share all state.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

fn journal_capacity_from_env() -> usize {
    std::env::var(crate::JOURNAL_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(crate::JOURNAL_DEFAULT_CAPACITY)
}

impl Registry {
    /// A fresh, enabled registry. Journal capacity comes from
    /// [`crate::JOURNAL_ENV`] (default [`crate::JOURNAL_DEFAULT_CAPACITY`]).
    pub fn new() -> Self {
        Self::with_journal_capacity(journal_capacity_from_env())
    }

    /// A fresh registry with an explicit journal ring capacity
    /// (`0` disables the journal entirely).
    pub fn with_journal_capacity(capacity: usize) -> Self {
        Registry {
            inner: Arc::new(Inner {
                counters: RwLock::new(HashMap::new()),
                histograms: RwLock::new(HashMap::new()),
                journal: Mutex::new(Journal {
                    ring: VecDeque::with_capacity(capacity.min(4096)),
                    capacity,
                    dropped: 0,
                }),
                enabled: AtomicBool::new(true),
                birth: Instant::now(),
            }),
        }
    }

    /// Runtime kill switch: while disabled, every counter add, histogram
    /// record, and journal event on this registry is dropped. Used by the
    /// overhead bench to compare instrumented-vs-dark on one binary.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently enabled.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Resolves (registering on first use) the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(cell) = self.inner.counters.read().unwrap().get(name) {
            return Counter {
                cell: Arc::clone(cell),
                reg: self.clone(),
            };
        }
        let mut map = self.inner.counters.write().unwrap();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter {
            cell: Arc::clone(cell),
            reg: self.clone(),
        }
    }

    /// One-shot `counter(name).add(n)`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Resolves (registering on first use) the named histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(core) = self.inner.histograms.read().unwrap().get(name) {
            return Histogram {
                core: Arc::clone(core),
                reg: self.clone(),
            };
        }
        let mut map = self.inner.histograms.write().unwrap();
        let core = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistCore::new()));
        Histogram {
            core: Arc::clone(core),
            reg: self.clone(),
        }
    }

    /// One-shot `histogram(name).record_ns(ns)`.
    pub fn record_ns(&self, name: &str, ns: u64) {
        self.histogram(name).record_ns(ns);
    }

    /// Opens an RAII [`Span`] timer over the named histogram.
    pub fn span(&self, name: &str) -> Span {
        Span {
            hist: self.histogram(name),
            start: Instant::now(),
        }
    }

    /// Appends a structured event to the journal ring (oldest event is
    /// evicted — and counted as dropped — when the ring is full).
    ///
    /// The timestamp is monotonic nanoseconds since this registry was
    /// created; determinism suites compare events through
    /// [`EventRecord::masked_line`], which hides it.
    pub fn event(&self, span: &str, fields: &[(&str, FieldValue)]) {
        if !self.enabled() {
            return;
        }
        let ts_ns = self.inner.birth.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let mut journal = self.inner.journal.lock().unwrap();
        if journal.capacity == 0 {
            journal.dropped += 1;
            return;
        }
        if journal.ring.len() >= journal.capacity {
            journal.ring.pop_front();
            journal.dropped += 1;
        }
        journal.ring.push_back(EventRecord {
            ts_ns,
            span: span.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Point-in-time snapshot of every counter and histogram, sorted by
    /// name, plus journal occupancy.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut counters: Vec<CounterSnapshot> = self
            .inner
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(name, cell)| CounterSnapshot {
                name: name.clone(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSnapshot> = self
            .inner
            .histograms
            .read()
            .unwrap()
            .iter()
            .map(|(name, core)| core.snapshot(name))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let journal = self.inner.journal.lock().unwrap();
        TelemetrySnapshot {
            counters,
            histograms,
            journal_len: journal.ring.len(),
            journal_dropped: journal.dropped,
        }
    }

    /// A copy of the journal contents, oldest first.
    pub fn journal_snapshot(&self) -> Vec<EventRecord> {
        self.inner
            .journal
            .lock()
            .unwrap()
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// Clears the journal ring (counters and histograms are untouched).
    pub fn clear_journal(&self) {
        let mut journal = self.inner.journal.lock().unwrap();
        journal.ring.clear();
        journal.dropped = 0;
    }
}

/// The process-wide registry — the fallback for [`current()`] when no
/// registry has been [`install`]ed on the calling thread.
pub fn global() -> Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new).clone()
}

thread_local! {
    static CURRENT: RefCell<Vec<Registry>> = const { RefCell::new(Vec::new()) };
}

/// The registry telemetry should record into on this thread: the
/// innermost [`install`]ed one, else [`global()`].
pub fn current() -> Registry {
    CURRENT.with(|stack| match stack.borrow().last() {
        Some(reg) => reg.clone(),
        None => global(),
    })
}

/// Makes `reg` the [`current()`] registry for this thread until the
/// returned guard drops. Nests: the previous current is restored.
///
/// Worker pools call this on each worker with the registry captured from
/// the spawning thread, so batch work reports to the caller's registry.
pub fn install(reg: &Registry) -> CurrentGuard {
    CURRENT.with(|stack| stack.borrow_mut().push(reg.clone()));
    CurrentGuard { _private: () }
}

/// Guard returned by [`install`]; restores the previous current registry
/// on drop.
pub struct CurrentGuard {
    _private: (),
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let reg = Registry::with_journal_capacity(8);
        reg.add("z.last", 3);
        reg.add("a.first", 1);
        reg.counter("a.first").add(4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.first"), Some(5));
        assert_eq!(snap.counter("z.last"), Some(3));
        assert!(snap.counters.windows(2).all(|w| w[0].name < w[1].name));
    }

    #[test]
    fn histogram_tracks_count_sum_min_max_buckets() {
        let reg = Registry::with_journal_capacity(0);
        let h = reg.histogram("lat");
        h.record_ns(500); // bucket 0
        h.record_ns(1_500); // bucket 1
        h.record_ns(3_000_000); // 3 ms → bucket 12
        let snap = reg.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(hs.count, 3);
        assert_eq!(hs.sum_ns, 3_002_000);
        assert_eq!(hs.min_ns, 500);
        assert_eq!(hs.max_ns, 3_000_000);
        assert_eq!(hs.buckets.iter().sum::<u64>(), 3);
        assert_eq!(hs.buckets[0], 1);
        assert_eq!(hs.buckets[1], 1);
        assert_eq!(hs.buckets[12], 1);
    }

    #[test]
    fn span_records_into_histogram_on_drop() {
        let reg = Registry::with_journal_capacity(0);
        {
            let _s = reg.span("work");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("work").unwrap().count, 1);
    }

    #[test]
    fn journal_is_a_bounded_ring() {
        let reg = Registry::with_journal_capacity(2);
        reg.event("a", &[]);
        reg.event("b", &[("k", FieldValue::U64(1))]);
        reg.event("c", &[]);
        let events = reg.journal_snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].span, "b");
        assert_eq!(events[1].span, "c");
        assert_eq!(reg.snapshot().journal_dropped, 1);
    }

    #[test]
    fn disabled_registry_drops_everything() {
        let reg = Registry::with_journal_capacity(8);
        reg.set_enabled(false);
        reg.add("c", 7);
        reg.record_ns("h", 100);
        reg.event("e", &[]);
        {
            let _s = reg.span("s");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(0));
        assert_eq!(snap.histogram("h").unwrap().count, 0);
        assert_eq!(snap.journal_len, 0);
        reg.set_enabled(true);
        reg.add("c", 7);
        assert_eq!(reg.snapshot().counter("c"), Some(7));
    }

    #[test]
    fn install_overrides_current_and_nests() {
        let outer = Registry::with_journal_capacity(0);
        let inner = Registry::with_journal_capacity(0);
        {
            let _g1 = install(&outer);
            current().add("hits", 1);
            {
                let _g2 = install(&inner);
                current().add("hits", 10);
            }
            current().add("hits", 1);
        }
        assert_eq!(outer.snapshot().counter("hits"), Some(2));
        assert_eq!(inner.snapshot().counter("hits"), Some(10));
    }

    #[test]
    fn timestamps_are_monotonic_nonzero_origin() {
        let reg = Registry::with_journal_capacity(8);
        reg.event("first", &[]);
        reg.event("second", &[]);
        let ev = reg.journal_snapshot();
        assert!(ev[0].ts_ns <= ev[1].ts_ns);
    }
}
