//! Concurrency contract of the registry: 8 threads hammering counters,
//! histograms, and the journal concurrently lose nothing — totals are
//! exact, histogram invariants hold (no torn reads), and the journal
//! ring never exceeds its capacity while accounting for every drop.
//!
//! The suite runs with the `telemetry` feature on and off; with it off
//! every assertion degenerates to the inert zero-snapshot, pinned by the
//! final test.

use ashn_telemetry::Registry;

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[cfg(feature = "telemetry")]
#[test]
fn eight_threads_of_counter_adds_total_exactly() {
    let reg = Registry::with_journal_capacity(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let reg = reg.clone();
            scope.spawn(move || {
                let shared = reg.counter("stress.shared");
                let own = reg.counter(&format!("stress.thread.{t}"));
                for i in 0..PER_THREAD {
                    shared.add(1);
                    own.add(i % 3);
                }
            });
        }
    });
    let snap = reg.snapshot();
    assert_eq!(
        snap.counter("stress.shared"),
        Some(THREADS as u64 * PER_THREAD)
    );
    let per_thread: u64 = (0..PER_THREAD).map(|i| i % 3).sum();
    for t in 0..THREADS {
        assert_eq!(
            snap.counter(&format!("stress.thread.{t}")),
            Some(per_thread),
            "thread {t} lost adds"
        );
    }
}

#[cfg(feature = "telemetry")]
#[test]
fn eight_threads_of_histogram_samples_preserve_invariants() {
    let reg = Registry::with_journal_capacity(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let reg = reg.clone();
            scope.spawn(move || {
                let hist = reg.histogram("stress.lat");
                for i in 0..PER_THREAD {
                    // Spread samples across many buckets, deterministically.
                    hist.record_ns((t as u64 + 1) * 1_000 * (1 + i % 7));
                }
            });
        }
    });
    let snap = reg.snapshot();
    let h = snap.histogram("stress.lat").expect("histogram registered");
    let expect_count = THREADS as u64 * PER_THREAD;
    let expect_sum: u64 = (0..THREADS as u64)
        .flat_map(|t| (0..PER_THREAD).map(move |i| (t + 1) * 1_000 * (1 + i % 7)))
        .sum();
    assert_eq!(h.count, expect_count, "torn/lost count");
    assert_eq!(h.sum_ns, expect_sum, "torn/lost sum");
    assert_eq!(h.min_ns, 1_000);
    assert_eq!(h.max_ns, THREADS as u64 * 1_000 * 7);
    assert_eq!(
        h.buckets.iter().sum::<u64>(),
        expect_count,
        "bucket totals must account for every sample"
    );
}

#[cfg(feature = "telemetry")]
#[test]
fn eight_threads_of_journal_events_stay_bounded_and_accounted() {
    let capacity = 64;
    let reg = Registry::with_journal_capacity(capacity);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let reg = reg.clone();
            scope.spawn(move || {
                for i in 0..1_000u64 {
                    reg.event("stress.event", &[("t", (t as u64).into()), ("i", i.into())]);
                }
            });
        }
    });
    let snap = reg.snapshot();
    assert_eq!(snap.journal_len, capacity, "ring must be full, not beyond");
    assert_eq!(
        snap.journal_len as u64 + snap.journal_dropped,
        THREADS as u64 * 1_000,
        "every event must be retained or counted as dropped"
    );
    let events = reg.journal_snapshot();
    assert_eq!(events.len(), capacity);
    assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
}

#[cfg(feature = "telemetry")]
#[test]
fn mixed_hammering_with_concurrent_snapshots_never_tears() {
    let reg = Registry::with_journal_capacity(32);
    std::thread::scope(|scope| {
        for _ in 0..THREADS / 2 {
            let reg = reg.clone();
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    reg.counter("mixed.c").add(2);
                    reg.histogram("mixed.h").record_ns(5_000);
                }
            });
        }
        // Concurrent readers: snapshots mid-flight must be internally sane
        // (monotone counter, bucket sum == count) even while writers run.
        for _ in 0..THREADS / 2 {
            let reg = reg.clone();
            scope.spawn(move || {
                let mut last = 0;
                for _ in 0..200 {
                    let snap = reg.snapshot();
                    let c = snap.counter("mixed.c").unwrap_or(0);
                    assert!(c >= last, "counter went backward: {c} < {last}");
                    assert!(c.is_multiple_of(2), "torn counter read: {c}");
                    last = c;
                    if let Some(h) = snap.histogram("mixed.h") {
                        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
                    }
                }
            });
        }
    });
    let total = THREADS as u64 / 2 * PER_THREAD;
    let snap = reg.snapshot();
    assert_eq!(snap.counter("mixed.c"), Some(2 * total));
    assert_eq!(snap.histogram("mixed.h").unwrap().count, total);
}

#[cfg(not(feature = "telemetry"))]
#[test]
fn feature_off_registry_is_inert() {
    let reg = Registry::with_journal_capacity(64);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            // The inert registry is `Copy`; `move` captures a copy.
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    reg.counter("off.c").add(1);
                    reg.histogram("off.h").record_ns(1_000);
                    reg.event("off.e", &[]);
                }
            });
        }
    });
    let snap = reg.snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
    assert_eq!(snap.journal_len, 0);
    assert!(reg.journal_snapshot().is_empty());
}
