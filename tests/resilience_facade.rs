//! Facade resilience: `Compiler::resilience` must turn synthesis failures
//! into degraded-but-correct compilations instead of errors, without
//! changing the output of a healthy pipeline.

use ashn::ir::{Basis, Circuit, SynthError};
use ashn::math::CMat;
use ashn::qv::sample_model_circuit;
use ashn::{Compiler, RetryPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A basis whose synthesis always fails — the degradation tier is the only
/// way a compile can succeed.
struct AlwaysFails;

impl Basis for AlwaysFails {
    fn name(&self) -> String {
        "AlwaysFails".into()
    }

    fn synthesize(&self, _u: &CMat) -> Result<Circuit, SynthError> {
        Err(SynthError::Convergence {
            basis: self.name(),
            detail: "unconditional test failure".into(),
        })
    }

    fn expected_entanglers(&self, _u: &CMat) -> usize {
        3
    }
}

#[test]
fn resilience_degrades_failed_synthesis_instead_of_erroring() {
    let mut rng = StdRng::seed_from_u64(3);
    let model = sample_model_circuit(3, &mut rng);

    let plain = Compiler::new().basis(AlwaysFails);
    assert!(
        plain.compile(&model).is_err(),
        "without resilience a dead basis must fail the compile"
    );

    let resilient = Compiler::new()
        .basis(AlwaysFails)
        .resilience(RetryPolicy::default().with_attempts(2));
    let compiled = resilient
        .compile(&model)
        .expect("CNOT degradation tier must rescue the compile");
    assert_eq!(compiled.positions().len(), model.d);
    assert!(!compiled.circuit().instructions.is_empty());
    // The degraded circuit is still semantically sound end to end.
    assert!(compiled.score().hop > 0.5);
}

#[test]
fn resilience_is_invisible_on_a_healthy_basis() {
    let mut rng = StdRng::seed_from_u64(9);
    let model = sample_model_circuit(3, &mut rng);
    let baseline = Compiler::new().compile(&model).expect("compile");
    let resilient = Compiler::new()
        .resilience(RetryPolicy::default().with_attempts(3))
        .compile(&model)
        .expect("compile");
    let fp = |c: &Circuit| -> Vec<u64> {
        let mut bits = Vec::new();
        for inst in &c.instructions {
            bits.extend(inst.qubits.iter().map(|&q| q as u64));
            for i in 0..inst.matrix.rows() {
                for j in 0..inst.matrix.cols() {
                    bits.push(inst.matrix[(i, j)].re.to_bits());
                    bits.push(inst.matrix[(i, j)].im.to_bits());
                }
            }
        }
        bits
    };
    assert_eq!(
        fp(baseline.circuit()),
        fp(resilient.circuit()),
        "first-attempt success must be bit-identical to the unwrapped pipeline"
    );
}
