//! Facade-level synthesis-cache observability: `Compiler::synth_stats`
//! exposes the exact-hit / class-hit / miss counters of the memo-cache
//! wrapped around the active basis.

use ashn::qv::sample_model_circuit;
use ashn::{Compiler, GateSet, QvNoise};
use ashn_synth::basis::CzBasis;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn compile_twice_reports_misses_then_hits() {
    let mut rng = StdRng::seed_from_u64(4001);
    let model = sample_model_circuit(3, &mut rng);
    let compiler = Compiler::new()
        .gate_set(GateSet::Cz)
        .noise(QvNoise::with_e_cz(0.01));

    let fresh = compiler.synth_stats().expect("default compiler is cached");
    assert_eq!((fresh.hits(), fresh.misses), (0, 0));

    compiler.compile(&model).expect("compiles");
    let cold = compiler.synth_stats().unwrap();
    assert!(cold.misses > 0, "cold compile must miss");
    assert!(cold.len > 0, "cold compile must populate the cache");

    compiler.compile(&model).expect("compiles");
    let warm = compiler.synth_stats().unwrap();
    assert_eq!(
        warm.misses, cold.misses,
        "second compile of the same model must not miss"
    );
    assert!(
        warm.exact_hits > cold.exact_hits,
        "repeat targets must be exact hits"
    );
    assert!(warm.hit_rate() > 0.0);
}

#[test]
fn uncached_basis_reports_no_stats() {
    let compiler = Compiler::new().basis_uncached(CzBasis);
    assert!(compiler.synth_stats().is_none());
}

#[test]
fn stats_survive_basis_swap() {
    // Installing a new basis swaps in a fresh cache with zeroed counters.
    let compiler = Compiler::new().gate_set(GateSet::Sqisw);
    let stats = compiler.synth_stats().unwrap();
    assert_eq!(
        (stats.exact_hits, stats.class_hits, stats.misses),
        (0, 0, 0)
    );
}
