//! Facade-level plan-backed simulation: `Compiled::exec_plan` resolves the
//! scheduled noise into an `ExecPlan` without cloning gate matrices, and
//! `Compiled::simulate_trajectories` estimates the same distribution the
//! exact density-matrix simulator computes — deterministically for any
//! worker count.

use ashn::qv::sample_model_circuit;
use ashn::{Compiler, GateSet, QvNoise};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn trajectories_converge_to_the_exact_density_matrix() {
    let mut rng = StdRng::seed_from_u64(4101);
    let model = sample_model_circuit(3, &mut rng);
    let compiled = Compiler::new()
        .gate_set(GateSet::Cz)
        .noise(QvNoise::with_e_cz(0.03))
        .compile(&model)
        .expect("compiles");

    let plan = compiled.exec_plan().expect("compiled circuits plan");
    assert_eq!(plan.n_qubits(), compiled.circuit().n_qubits());
    assert!(!plan.is_noiseless(), "scheduled noise must be resolved");
    assert!(plan.ops().len() <= compiled.circuit().gates().len());

    let exact = compiled.simulate_noisy().probabilities();
    let est = compiled.simulate_trajectories(4000, 7, 0);
    let linf = exact
        .iter()
        .zip(est.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(linf < 0.03, "trajectory vs exact deviation {linf}");

    // Worker-count invariance at the facade boundary.
    let reference = compiled.simulate_trajectories(200, 11, 1);
    for workers in [2, 8] {
        assert_eq!(
            compiled.simulate_trajectories(200, 11, workers),
            reference,
            "workers = {workers}"
        );
    }
}

#[test]
fn score_many_matches_score_at_each_point() {
    let mut rng = StdRng::seed_from_u64(4102);
    let model = sample_model_circuit(3, &mut rng);
    let points = [QvNoise::with_e_cz(0.007), QvNoise::with_e_cz(0.017)];
    let compiled = Compiler::new()
        .gate_set(GateSet::Cz)
        .noise(points[0])
        .compile(&model)
        .expect("compiles");
    let many = compiled.score_many(&points);
    assert_eq!(many.len(), 2);
    let single = compiled.score();
    assert_eq!(many[0].hop.to_bits(), single.hop.to_bits());
    assert!(many[0].hop > many[1].hop, "more noise, less heavy output");
}
