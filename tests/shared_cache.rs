//! The facade↔service bridge: several `Compiler`s (and a
//! `CompileService`) share one process-wide `ShardedCache`, so classes
//! synthesized by any of them warm all of them.

use ashn::prelude::*;
use ashn::qv::sample_model_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn compilers_share_one_sharded_cache() {
    let cache = ShardedCache::new();
    let mut rng = StdRng::seed_from_u64(11);
    let model = sample_model_circuit(3, &mut rng);

    let first = Compiler::new().with_shared_cache(&cache);
    let compiled_first = first.compile(&model).expect("compile");
    let after_first = first.synth_stats().expect("shared stats");
    assert!(after_first.misses > 0, "cold compile must miss");

    // A *different* compiler instance pointed at the same cache compiles
    // the same model without a single cold synthesis.
    let second = Compiler::new().with_shared_cache(&cache);
    let compiled_second = second.compile(&model).expect("compile");
    let after_second = second.synth_stats().expect("shared stats");
    assert_eq!(
        after_second.misses, after_first.misses,
        "second compiler re-synthesized classes the first already solved"
    );
    assert!(
        after_second.exact_hits + after_second.class_hits
            > after_first.exact_hits + after_first.class_hits
    );

    // Same model, same basis, same cache: identical output.
    assert_eq!(
        compiled_first.circuit().instructions.len(),
        compiled_second.circuit().instructions.len()
    );
    for (a, b) in compiled_first
        .circuit()
        .instructions
        .iter()
        .zip(&compiled_second.circuit().instructions)
    {
        assert_eq!(a.qubits, b.qubits);
        assert_eq!(a.duration.to_bits(), b.duration.to_bits());
    }
}

#[test]
fn service_and_compiler_share_synthesis_results() {
    let cache = ShardedCache::new();
    let mut rng = StdRng::seed_from_u64(23);
    let model = sample_model_circuit(3, &mut rng);

    // The compiler warms the cache…
    let compiler = Compiler::new().with_shared_cache(&cache);
    compiler.compile(&model).expect("compile");
    let warmed = cache.len();
    assert!(warmed > 0);

    // …and a batch service over the same cache + basis parameters serves
    // repeated classes without growing it for free targets it has seen.
    let service = CompileService::with_cache(
        ashn::synth::basis::AshnBasis::with_cutoff(0.0, 1.1),
        cache.clone(),
    )
    .workers(4);
    // Use the model's own gate unitaries as the service batch.
    let mut targets = Vec::new();
    for layer in &model.layers {
        for (_, gate) in layer {
            targets.push(gate.clone());
        }
    }
    let batch = service.synthesize_batch(&targets);
    assert_eq!(batch.stats.failed, 0);
    assert_eq!(
        batch.stats.cold_classes, 0,
        "every class was already warmed by the compiler"
    );
}
