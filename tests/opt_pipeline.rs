//! Facade-level optimizer integration: `Compiler::opt_level` runs the
//! `ashn-opt` pipeline between routing and scheduling, and
//! `Compiled::opt_stats` exposes the accounting.

use ashn::qv::sample_model_circuit;
use ashn::{AshnError, Compiler, GateSet, OptLevel, QvNoise};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn opt_level_default_reduces_counts_and_reports_stats() -> Result<(), AshnError> {
    let mut rng = StdRng::seed_from_u64(41);
    let model = sample_model_circuit(4, &mut rng);
    let noise = QvNoise::with_e_cz(0.007);
    let raw = Compiler::new()
        .gate_set(GateSet::Ashn { cutoff: 1.1 })
        .noise(noise)
        .compile(&model)?;
    let opt = Compiler::new()
        .gate_set(GateSet::Ashn { cutoff: 1.1 })
        .noise(noise)
        .opt_level(OptLevel::Default)
        .compile(&model)?;

    // The default compiler does not optimize (and reports no stats).
    assert!(raw.opt_stats().is_none());
    let stats = opt.opt_stats().expect("stats at OptLevel::Default");
    assert_eq!(stats.before.gates, raw.circuit().instructions.len());
    assert_eq!(stats.after.gates, opt.circuit().instructions.len());
    assert!(stats.gates_removed() > 0, "QV circuits always fuse 1q runs");
    assert!(opt.circuit().entangler_count() <= raw.circuit().entangler_count());
    assert!(!stats.passes.is_empty());

    // Scoring still works on the optimized circuit, with no regression.
    let score_raw = raw.score();
    let score_opt = opt.score();
    assert!(score_opt.two_qubit_gates <= score_raw.two_qubit_gates);
    assert!(score_opt.hop >= score_raw.hop - 1e-3);

    // The router's final placement is untouched by optimization.
    assert_eq!(raw.positions(), opt.positions());
    Ok(())
}

#[test]
fn opt_level_light_runs_structural_passes_only() -> Result<(), AshnError> {
    let mut rng = StdRng::seed_from_u64(42);
    let model = sample_model_circuit(3, &mut rng);
    let light = Compiler::new().opt_level(OptLevel::Light).compile(&model)?;
    let stats = light.opt_stats().expect("stats at OptLevel::Light");
    assert!(
        stats.passes.iter().all(|p| !p.pass.starts_with("resynth")),
        "Light must not resynthesize: {:?}",
        stats
            .passes
            .iter()
            .map(|p| p.pass.clone())
            .collect::<Vec<_>>()
    );
    // Structural passes never touch entangler counts on compiled circuits.
    assert_eq!(stats.before.two_qubit, stats.after.two_qubit);
    assert!(stats.after.gates <= stats.before.gates);
    Ok(())
}

#[test]
fn optimized_circuits_simulate_equivalently() -> Result<(), AshnError> {
    // The optimized compilation must produce the same logical distribution
    // as the raw one (up to the resynthesis acceptance tolerance) when
    // simulated noiselessly.
    let mut rng = StdRng::seed_from_u64(43);
    let model = sample_model_circuit(3, &mut rng);
    let raw = Compiler::new().compile(&model)?;
    let opt = Compiler::new()
        .opt_level(OptLevel::Default)
        .compile(&model)?;
    let p_raw = raw.logical_probs(&raw.simulate_pure().probabilities());
    let p_opt = opt.logical_probs(&opt.simulate_pure().probabilities());
    for (a, b) in p_raw.iter().zip(&p_opt) {
        assert!((a - b).abs() < 1e-4, "distribution drifted: {a} vs {b}");
    }
    Ok(())
}
