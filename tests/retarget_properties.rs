//! Property tests for rule-based instruction-set retargeting: random
//! circuits over every registered source gate set, retargeted onto every
//! registered target set, preserve the full-circuit unitary at `1e-12` —
//! both through the bare [`Retarget`] pass and through the service's
//! routed `compile_batch` pipeline (rule tier + lookahead router).

use ashn::ir::{Basis, Circuit, Instruction};
use ashn::math::randmat::haar_unitary;
use ashn::math::CMat;
use ashn::opt::{DagCircuit, Pass, Retarget};
use ashn::prelude::{standard_rules, CnotBasis, CzBasis, EcrBasis, SqiswBasis};
use ashn::service::{CompileRequest, CompileService, ShardedCache};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SOURCE_SETS: [&str; 4] = ["CNOT", "CZ", "ECR", "SQiSW"];

fn target_bases() -> [&'static dyn Basis; 4] {
    [&CnotBasis, &CzBasis, &EcrBasis, &SqiswBasis]
}

/// Frobenius distance after aligning global phases.
fn phase_dist(a: &CMat, b: &CMat) -> f64 {
    let tr = a.adjoint().matmul(b).trace();
    let phase = if tr.abs() > 1e-15 {
        tr / tr.abs()
    } else {
        ashn::math::Complex::ONE
    };
    a.scale(phase).dist(b)
}

/// A random circuit over `n` qubits built from the source set's native
/// gates (including wire reversals) interleaved with Haar 1q dressing.
fn source_circuit(source: &str, n: usize, depth: usize, rng: &mut StdRng) -> Circuit {
    let registry = standard_rules();
    let set = registry
        .registry()
        .get(source, "")
        .unwrap_or_else(|| panic!("{source} registered"));
    let mut circuit = Circuit::new(n);
    for q in 0..n {
        circuit.push(Instruction::new(vec![q], haar_unitary(2, rng), "u"));
    }
    for _ in 0..depth {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        let gate = &set.gates[rng.gen_range(0..set.gates.len())];
        circuit.push(Instruction::new(
            vec![a, b],
            gate.matrix.clone(),
            gate.name.clone(),
        ));
        let q = rng.gen_range(0..n);
        circuit.push(Instruction::new(vec![q], haar_unitary(2, rng), "u"));
    }
    circuit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every (source set, target set) pair: the Retarget pass preserves
    /// the full-circuit unitary at 1e-12 and each rewrite is closed-form.
    #[test]
    fn retargeting_preserves_unitary_across_every_pair(seed in 0u64..256) {
        let mut rng = StdRng::seed_from_u64(seed);
        for source in SOURCE_SETS {
            let circuit = source_circuit(source, 3, 4, &mut rng);
            let reference = circuit.unitary();
            for target in target_bases() {
                let mut dag = DagCircuit::from_circuit(&circuit).unwrap();
                Retarget::new(target).run(&mut dag).unwrap();
                let out = dag.into_circuit();
                let d = phase_dist(&out.unitary(), &reference);
                prop_assert!(
                    d < 1e-12,
                    "{source} -> {}: unitary drifted by {d:.2e}",
                    target.name(),
                );
            }
        }
    }

    /// Mixed known-gate circuits through the full routed service pipeline:
    /// the rule tier serves every gate, the lookahead router inserts
    /// SWAPs, and the physical circuit still realizes the logical unitary
    /// (up to the router's final qubit placement) at 1e-12.
    #[test]
    fn rule_tier_survives_the_lookahead_router(seed in 0u64..256) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4;
        // Gates drawn across ALL source sets, on arbitrary (often
        // non-adjacent) pairs, so routing must insert SWAP fragments.
        let mut circuit = Circuit::new(n);
        for q in 0..n {
            circuit.push(Instruction::new(vec![q], haar_unitary(2, &mut rng), "u"));
        }
        let registry = standard_rules();
        for _ in 0..5 {
            let source = SOURCE_SETS[rng.gen_range(0..SOURCE_SETS.len())];
            let set = registry.registry().get(source, "").unwrap();
            let gate = &set.gates[rng.gen_range(0..set.gates.len())];
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            circuit.push(Instruction::new(
                vec![a, b],
                gate.matrix.clone(),
                gate.name.clone(),
            ));
        }
        let reference = circuit.unitary();

        let service = CompileService::with_cache(CzBasis, ShardedCache::new());
        let batch = service.compile_batch(&[CompileRequest::new(circuit)]);
        prop_assert!(batch.stats.rule_hits > 0, "rule tier must serve this batch");
        prop_assert_eq!(batch.stats.cold_serves, 0, "every gate is rule-covered");
        let result = batch.results[0].as_ref().expect("compiles");

        // The physical unitary must equal P · U_logical, where P routes
        // logical qubit `l` to its final site `positions[l]` (qubit q is
        // bit n-1-q of the basis index).
        let sites = result.circuit.n_qubits();
        prop_assert_eq!(sites, n, "2x2 grid holds the register exactly");
        let dim = 1usize << n;
        let mut permuted = CMat::zeros(dim, dim);
        for col in 0..dim {
            let mut row = 0usize;
            for l in 0..n {
                if col >> (n - 1 - l) & 1 == 1 {
                    row |= 1 << (n - 1 - result.positions[l]);
                }
            }
            permuted[(row, col)] = ashn::math::Complex::ONE;
        }
        let expected = permuted.matmul(&reference);
        let d = phase_dist(&result.circuit.unitary(), &expected);
        prop_assert!(d < 1e-12, "routed circuit drifted by {d:.2e}");
    }
}
