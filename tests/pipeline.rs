//! Cross-crate integration tests: full pipelines from pulse compilation
//! through simulation, synthesis, routing, and calibration.

use ashn::cal::cartan::estimate_coords;
use ashn::core::scheme::{AshnScheme, SubScheme};
use ashn::core::verify::{average_gate_fidelity, entanglement_fidelity};
use ashn::gates::cost::optimal_time;
use ashn::gates::kak::weyl_coordinates;
use ashn::gates::weyl::WeylPoint;
use ashn::math::randmat::haar_unitary;
use ashn::math::CMat;
use ashn::qv::{compile_model, sample_model_circuit, score_compiled, GateSet, QvNoise};
use ashn::sim::{Circuit, Gate, NoiseModel};
use ashn::synth::ashn_basis::decompose_ashn;
use ashn::synth::qsd::{qsd, SynthBasis};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pulse → simulator → Cartan-double estimation round trip: compile a class,
/// run the pulse unitary through the statevector simulator as a gate, and
/// re-estimate its coordinates from simulated process data.
#[test]
fn pulse_to_simulator_to_estimation_round_trip() {
    let scheme = AshnScheme::new(0.15);
    for target in [WeylPoint::CNOT, WeylPoint::B, WeylPoint::new(0.5, 0.3, -0.2)] {
        let pulse = scheme.compile(target).expect("compiles");
        let u = pulse.unitary();
        // Run through the circuit IR.
        let mut c = Circuit::new(2);
        c.push(Gate::new(vec![0, 1], u.clone(), "AshN").with_duration(pulse.tau));
        let from_sim = c.unitary();
        assert!(from_sim.dist(&u) < 1e-12);
        // Estimate coordinates the calibration way.
        let est = estimate_coords(&from_sim, target);
        assert!(
            est.gate_dist(target.canonicalize()) < 1e-7,
            "estimated {est} for target {target}"
        );
    }
}

/// Synthesis → AshN pulses: a three-qubit unitary decomposed by Theorem 12,
/// with every generic gate re-expressed as one verified AshN pulse, must
/// still reconstruct the original up to per-gate local corrections.
#[test]
fn theorem12_gates_all_compile_to_single_pulses() {
    let mut rng = StdRng::seed_from_u64(101);
    let u = haar_unitary(8, &mut rng);
    let circuit = ashn::synth::three_qubit::decompose_three_qubit(&u);
    let scheme = AshnScheme::new(0.0);
    assert_eq!(circuit.two_qubit_count(), 11);
    let mut total_time = 0.0;
    for g in &circuit.gates {
        let s = decompose_ashn(&g.matrix, &scheme).expect("compiles");
        assert_eq!(s.circuit.entangler_count() <= 1, true);
        assert!(s.circuit.error(&g.matrix) < 1e-6);
        total_time += s.pulse.tau;
    }
    // Eleven pulses, each at most π: comfortably bounded.
    assert!(total_time < 11.0 * std::f64::consts::PI);
}

/// End-to-end QV smoke test with all gate sets on the same circuit,
/// checking the paper's ordering and that compilation is exact.
#[test]
fn qv_pipeline_orders_gate_sets() {
    let mut rng = StdRng::seed_from_u64(7);
    let noise = QvNoise::with_e_cz(0.017);
    let mut hops = [0.0f64; 3];
    let sets = [GateSet::Cz, GateSet::Sqisw, GateSet::Ashn { cutoff: 1.1 }];
    for _ in 0..4 {
        let model = sample_model_circuit(4, &mut rng);
        for (k, gs) in sets.iter().enumerate() {
            hops[k] += score_compiled(&compile_model(&model, *gs), &noise).hop;
        }
    }
    assert!(
        hops[2] > hops[1] && hops[1] > hops[0],
        "expected AshN > SQiSW > CZ, got {hops:?}"
    );
}

/// QSD output simulated gate-by-gate equals the dense unitary.
#[test]
fn qsd_circuit_runs_identically_in_simulator() {
    let mut rng = StdRng::seed_from_u64(31);
    let u = haar_unitary(8, &mut rng);
    let circ = qsd(&u, SynthBasis::Cnot);
    let mut sim_circuit = Circuit::new(3);
    for g in &circ.gates {
        sim_circuit.push(Gate::new(g.qubits.clone(), g.matrix.clone(), g.label.clone()));
    }
    let out = sim_circuit.unitary().scale(circ.phase);
    assert!(out.dist(&u) < 1e-6, "error {}", out.dist(&u));
}

/// Depolarizing noise degrades average fidelity of a compiled pulse run, in
/// proportion to the rate.
#[test]
fn noise_model_scales_with_rate() {
    let scheme = AshnScheme::new(0.0);
    let pulse = scheme.compile(WeylPoint::CNOT).unwrap();
    let u = pulse.unitary();
    let purity_at = |p: f64| {
        let mut c = Circuit::new(2);
        c.push(
            Gate::new(vec![0, 1], u.clone(), "AshN")
                .with_duration(pulse.tau)
                .with_error_rate(p),
        );
        c.run_noisy(&NoiseModel::NOISELESS).purity()
    };
    let clean = purity_at(0.0);
    let light = purity_at(0.01);
    let heavy = purity_at(0.1);
    assert!((clean - 1.0).abs() < 1e-10);
    assert!(light > heavy);
}

/// The headline claim, end to end: for Haar-random targets, AshN needs one
/// pulse at the optimal time and reconstructs the target exactly; a CNOT box
/// needs three entanglers and strictly more interaction time.
#[test]
fn one_gate_scheme_vs_cnot_boxes() {
    let mut rng = StdRng::seed_from_u64(77);
    let scheme = AshnScheme::new(0.0);
    for _ in 0..5 {
        let u = haar_unitary(4, &mut rng);
        let coords = weyl_coordinates(&u);
        let ashn = decompose_ashn(&u, &scheme).unwrap();
        let cnot = ashn::synth::cnot_basis::decompose_cnot(&u);
        assert_eq!(ashn.circuit.entangler_count(), 1);
        assert_eq!(cnot.entangler_count(), 3);
        assert!(ashn.circuit.entangler_duration() <= optimal_time(0.0, coords) + 1e-9);
        assert!(cnot.entangler_duration() > ashn.circuit.entangler_duration());
        assert!(average_gate_fidelity(&ashn.circuit.unitary(), &u) > 1.0 - 1e-8);
        assert!(average_gate_fidelity(&cnot.unitary(), &u) > 1.0 - 1e-8);
    }
}

/// Identity-class targets produce empty pulses that really are the identity.
#[test]
fn identity_pulse_is_trivial_everywhere() {
    for h in [0.0, 0.4, -0.6] {
        let pulse = AshnScheme::new(h).compile(WeylPoint::IDENTITY).unwrap();
        assert_eq!(pulse.scheme, SubScheme::Identity);
        assert!(entanglement_fidelity(&pulse.unitary(), &CMat::identity(4)) > 1.0 - 1e-12);
    }
}
