//! Cross-crate integration tests: full pipelines from pulse compilation
//! through synthesis, routing, scheduling, and simulation — all over the
//! canonical `ashn_ir::Circuit` IR and the `ashn::Compiler` entry point
//! (no per-crate IR copying anywhere).

use ashn::cal::cartan::estimate_coords;
use ashn::core::scheme::{AshnScheme, SubScheme};
use ashn::core::verify::{average_gate_fidelity, entanglement_fidelity};
use ashn::gates::cost::optimal_time;
use ashn::gates::kak::weyl_coordinates;
use ashn::gates::weyl::WeylPoint;
use ashn::ir::{Basis, Circuit, Instruction};
use ashn::math::randmat::haar_unitary;
use ashn::math::CMat;
use ashn::prelude::{AshnBasis, CnotBasis};
use ashn::qv::sample_model_circuit;
use ashn::sim::{NoiseModel, Simulate};
use ashn::synth::qsd::{qsd, SynthBasis};
use ashn::{AshnError, Compiler, GateSet, QvNoise};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pulse → simulator → Cartan-double estimation round trip: compile a class,
/// run the pulse unitary through the statevector simulator as a gate, and
/// re-estimate its coordinates from simulated process data.
#[test]
fn pulse_to_simulator_to_estimation_round_trip() {
    let scheme = AshnScheme::new(0.15);
    for target in [
        WeylPoint::CNOT,
        WeylPoint::B,
        WeylPoint::new(0.5, 0.3, -0.2),
    ] {
        let pulse = scheme.compile(target).expect("compiles");
        let u = pulse.unitary();
        // Run through the circuit IR.
        let mut c = Circuit::new(2);
        c.push(Instruction::new(vec![0, 1], u.clone(), "AshN").with_duration(pulse.tau));
        let from_sim = c.unitary();
        assert!(from_sim.dist(&u) < 1e-12);
        // Estimate coordinates the calibration way.
        let est = estimate_coords(&from_sim, target);
        assert!(
            est.gate_dist(target.canonicalize()) < 1e-7,
            "estimated {est} for target {target}"
        );
    }
}

/// Synthesis → AshN pulses: a three-qubit unitary decomposed by Theorem 12,
/// with every generic gate re-expressed through the `Basis` abstraction as
/// one verified AshN pulse.
#[test]
fn theorem12_gates_all_compile_to_single_pulses() {
    let mut rng = StdRng::seed_from_u64(101);
    let u = haar_unitary(8, &mut rng);
    let circuit = ashn::synth::three_qubit::decompose_three_qubit(&u);
    let ashn_basis = AshnBasis::ideal();
    assert_eq!(circuit.two_qubit_count(), 11);
    let mut total_time = 0.0;
    for g in &circuit.instructions {
        let compiled = ashn_basis.synthesize(&g.matrix).expect("compiles");
        assert!(compiled.entangler_count() <= 1);
        assert!(compiled.error(&g.matrix) < 1e-6);
        total_time += compiled.entangler_duration();
    }
    // Eleven pulses, each at most π: comfortably bounded.
    assert!(total_time < 11.0 * std::f64::consts::PI);
}

/// End-to-end QV smoke test with all gate sets on the same circuits through
/// the `Compiler` pipeline, checking the paper's ordering.
#[test]
fn qv_pipeline_orders_gate_sets() -> Result<(), AshnError> {
    let mut rng = StdRng::seed_from_u64(7);
    let noise = QvNoise::with_e_cz(0.017);
    let mut hops = [0.0f64; 3];
    let compilers = [
        Compiler::new().gate_set(GateSet::Cz).noise(noise),
        Compiler::new().gate_set(GateSet::Sqisw).noise(noise),
        Compiler::new()
            .gate_set(GateSet::Ashn { cutoff: 1.1 })
            .noise(noise),
    ];
    for _ in 0..4 {
        let model = sample_model_circuit(4, &mut rng);
        for (k, compiler) in compilers.iter().enumerate() {
            hops[k] += compiler.compile(&model)?.score().hop;
        }
    }
    assert!(
        hops[2] > hops[1] && hops[1] > hops[0],
        "expected AshN > SQiSW > CZ, got {hops:?}"
    );
    Ok(())
}

/// QSD output is *directly* a simulator circuit now (one IR): its dense
/// unitary — phase included — matches the synthesized target, and the
/// statevector run agrees with the density-matrix run.
#[test]
fn qsd_circuit_runs_identically_in_simulator() {
    let mut rng = StdRng::seed_from_u64(31);
    let u = haar_unitary(8, &mut rng);
    let circ = qsd(&u, SynthBasis::Cnot);
    // No gate-by-gate copying: the QSD output is the simulator's circuit.
    let out = circ.unitary();
    assert!(out.dist(&u) < 1e-6, "error {}", out.dist(&u));
    let pure = circ.run_pure().probabilities();
    let rho = circ.run_noisy(&NoiseModel::NOISELESS).probabilities();
    for (a, b) in pure.iter().zip(rho.iter()) {
        assert!((a - b).abs() < 1e-9);
    }
}

/// Depolarizing noise degrades average fidelity of a compiled pulse run, in
/// proportion to the rate.
#[test]
fn noise_model_scales_with_rate() {
    let scheme = AshnScheme::new(0.0);
    let pulse = scheme.compile(WeylPoint::CNOT).unwrap();
    let u = pulse.unitary();
    let purity_at = |p: f64| {
        let mut c = Circuit::new(2);
        c.push(
            Instruction::new(vec![0, 1], u.clone(), "AshN")
                .with_duration(pulse.tau)
                .with_error_rate(p),
        );
        c.run_noisy(&NoiseModel::NOISELESS).purity()
    };
    let clean = purity_at(0.0);
    let light = purity_at(0.01);
    let heavy = purity_at(0.1);
    assert!((clean - 1.0).abs() < 1e-10);
    assert!(light > heavy);
}

/// The headline claim, end to end through the `Basis` trait: for
/// Haar-random targets, AshN needs one pulse at the optimal time and
/// reconstructs the target exactly; a CNOT box needs three entanglers and
/// strictly more interaction time.
#[test]
fn one_gate_scheme_vs_cnot_boxes() {
    let mut rng = StdRng::seed_from_u64(77);
    let ashn_basis = AshnBasis::ideal();
    let cnot_basis = CnotBasis;
    for _ in 0..5 {
        let u = haar_unitary(4, &mut rng);
        let coords = weyl_coordinates(&u);
        let ashn = ashn_basis.synthesize(&u).unwrap();
        let cnot = cnot_basis.synthesize(&u).unwrap();
        assert_eq!(ashn.entangler_count(), ashn_basis.expected_entanglers(&u));
        assert_eq!(ashn.entangler_count(), 1);
        assert_eq!(cnot.entangler_count(), cnot_basis.expected_entanglers(&u));
        assert_eq!(cnot.entangler_count(), 3);
        assert!(ashn.entangler_duration() <= optimal_time(0.0, coords) + 1e-9);
        assert!(cnot.entangler_duration() > ashn.entangler_duration());
        assert!(average_gate_fidelity(&ashn.unitary(), &u) > 1.0 - 1e-8);
        assert!(average_gate_fidelity(&cnot.unitary(), &u) > 1.0 - 1e-8);
    }
}

/// Identity-class targets produce empty pulses that really are the identity.
#[test]
fn identity_pulse_is_trivial_everywhere() {
    for h in [0.0, 0.4, -0.6] {
        let pulse = AshnScheme::new(h).compile(WeylPoint::IDENTITY).unwrap();
        assert_eq!(pulse.scheme, SubScheme::Identity);
        assert!(entanglement_fidelity(&pulse.unitary(), &CMat::identity(4)) > 1.0 - 1e-12);
    }
}

/// Compiler misconfiguration surfaces as a typed error, not a panic.
#[test]
fn compiler_rejects_undersized_grid() {
    let mut rng = StdRng::seed_from_u64(9);
    let model = sample_model_circuit(6, &mut rng);
    let result = Compiler::new()
        .grid(ashn::route::Grid::new(1, 2))
        .compile(&model);
    assert!(matches!(result, Err(AshnError::Config { .. })));
}
