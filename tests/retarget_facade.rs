//! Facade-level retargeting: `Compiler::retarget_circuit` +
//! `Compiler::source_basis`, with the rule tier's `rule_hits` visible in
//! `SynthStats`.

use ashn::gates::two::{cnot, iswap, swap};
use ashn::ir::{Circuit, Instruction};
use ashn::math::CMat;
use ashn::prelude::{CnotBasis, EcrBasis};
use ashn::{AshnError, Compiler, GateSet};

fn phase_dist(a: &CMat, b: &CMat) -> f64 {
    let tr = a.adjoint().matmul(b).trace();
    let phase = if tr.abs() > 1e-15 {
        tr / tr.abs()
    } else {
        ashn::math::Complex::ONE
    };
    a.scale(phase).dist(b)
}

fn gate_circuit(gates: &[(CMat, [usize; 2])], n: usize) -> Circuit {
    let mut circuit = Circuit::new(n);
    for (m, q) in gates {
        circuit.push(Instruction::new(q.to_vec(), m.clone(), "g"));
    }
    circuit
}

#[test]
fn retarget_circuit_rewrites_cx_traffic_exactly() -> Result<(), AshnError> {
    let compiler = Compiler::new().gate_set(GateSet::Cz);
    let circuit = gate_circuit(&[(cnot(), [0, 1]), (swap(), [1, 2]), (iswap(), [0, 2])], 3);
    let reference = circuit.unitary();
    let (out, stats) = compiler.retarget_circuit(&circuit)?;
    assert!(
        phase_dist(&out.unitary(), &reference) < 1e-12,
        "dist {:.2e}",
        phase_dist(&out.unitary(), &reference)
    );
    for inst in &out.instructions {
        if inst.qubits.len() == 2 {
            assert!(
                inst.matrix.dist(&ashn::gates::two::cz()) < 1e-12,
                "non-CZ entangler {} survived retargeting",
                inst.label
            );
        }
    }
    assert!(stats.after.two_qubit >= 1);
    Ok(())
}

#[test]
fn rule_hits_surface_in_facade_synth_stats() -> Result<(), AshnError> {
    let compiler = Compiler::new().gate_set(GateSet::Cz);
    // CNOT · SWAP on one pair is a single non-minimal block in the iSWAP
    // Weyl class: Retarget rewrites the gates to 4 CZs, then Resynthesize
    // asks the (rule-armed, cached) basis for the 2-CZ class solution —
    // which the iSWAP-class rule serves without any numeric synthesis.
    let circuit = gate_circuit(&[(cnot(), [0, 1]), (swap(), [0, 1])], 2);
    let reference = circuit.unitary();
    let (out, _) = compiler.retarget_circuit(&circuit)?;
    assert!(phase_dist(&out.unitary(), &reference) < 1e-12);
    assert_eq!(out.entangler_count(), 2, "iSWAP class takes 2 CZs");
    let synth = compiler.synth_stats().expect("default compiler is cached");
    assert!(synth.rule_hits > 0, "rule tier must have served the block");
    assert_eq!(synth.misses, 0, "no numeric synthesis may run");
    Ok(())
}

#[test]
fn source_basis_restricts_facade_retargeting() -> Result<(), AshnError> {
    // Declare the inputs as CNOT-set circuits: the iSWAP (not native to
    // the source) must survive the rule pass untouched, on its own pair,
    // while the CX is ported.
    let compiler = Compiler::new().basis(EcrBasis).source_basis(CnotBasis);
    let circuit = gate_circuit(&[(cnot(), [0, 1]), (iswap(), [1, 2])], 3);
    let reference = circuit.unitary();
    let (out, _) = compiler.retarget_circuit(&circuit)?;
    assert!(phase_dist(&out.unitary(), &reference) < 1e-9);
    assert!(
        out.instructions
            .iter()
            .any(|i| i.qubits.len() == 2 && i.matrix.dist(&iswap()) < 1e-12),
        "iSWAP outside the declared source set must survive"
    );
    Ok(())
}
