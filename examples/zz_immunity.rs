//! ZZ-error immunity (paper §4.1/§6.4): the AshN scheme treats parasitic
//! `ZZ` coupling as a compilation input, not an error source.
//!
//! ```bash
//! cargo run --release --example zz_immunity
//! ```

use ashn::core::zz::immunity_report;
use ashn::gates::weyl::WeylPoint;

fn main() {
    println!(
        "Compiling with knowledge of h̃ (aware) vs assuming h̃ = 0 (naive),\n\
         then executing on hardware with the true ZZ coupling:\n"
    );
    for target in [
        WeylPoint::CNOT,
        WeylPoint::ISWAP,
        WeylPoint::SWAP,
        WeylPoint::B,
    ] {
        println!("target {target}:");
        println!(
            "  {:>6} {:>14} {:>14} {:>14} {:>14}",
            "h̃", "aware err", "naive err", "aware F", "naive F"
        );
        for h in [0.05, 0.2, 0.5] {
            let r = immunity_report(target, h).expect("compiles");
            println!(
                "  {:>6.2} {:>14.2e} {:>14.2e} {:>14.9} {:>14.9}",
                h, r.aware_error, r.naive_error, r.aware_fidelity, r.naive_fidelity
            );
        }
        println!();
    }
    println!(
        "The aware column is at numerical precision for every class and every\n\
         h̃ ≤ 1 — the scheme parameters simply absorb the ZZ term (paper: the\n\
         AshN scheme is \"completely impervious to ZZ error\"). Undriven classes\n\
         like [iSWAP] suffer most under naive compilation."
    );
}
