//! Qubit routing economics (paper §6.4): AshN's single-pulse SWAP against
//! three-native-gate SWAPs on CZ/SQiSW hardware.
//!
//! ```bash
//! cargo run --release --example routing
//! ```

use ashn::qv::GateSet;
use ashn::route::{random_pairing, Grid, RouteOp, Router};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let d = 9;
    let layers = 9;
    let grid = Grid::for_qubits(d);
    let mut rng = StdRng::seed_from_u64(5);
    println!(
        "{d} qubits on a {}x{} grid, {layers} layers of random pairings:\n",
        grid.rows(),
        grid.cols()
    );

    let mut router = Router::new(grid, d);
    let mut swaps = 0usize;
    let mut gates = 0usize;
    for _ in 0..layers {
        for op in router.route_layer(&random_pairing(d, &mut rng)) {
            match op {
                RouteOp::Swap(_, _) => swaps += 1,
                RouteOp::Gate { .. } => gates += 1,
            }
        }
    }
    println!("routing inserted {swaps} SWAPs for {gates} layer gates\n");

    println!(
        "{:<14} {:>16} {:>18} {:>22}",
        "gate set", "natives per SWAP", "SWAP time (1/g)", "total routing time"
    );
    for gs in [GateSet::Cz, GateSet::Sqisw, GateSet::Ashn { cutoff: 0.0 }] {
        let compiled = gs.compile_swap().expect("SWAP synthesis converges");
        let natives = compiled.entangler_count();
        let time: f64 = compiled.total_duration();
        println!(
            "{:<14} {:>16} {:>18.4} {:>22.2}",
            gs.name(),
            natives,
            time,
            time * swaps as f64
        );
    }
    println!(
        "\nAshN routes with one 3π/4 pulse per SWAP — a {:.2}x interaction-time\n\
         saving over flux-tuned CZ routing (paper: up to 3.219x vs fSim-style\n\
         schemes).",
        (3.0 * std::f64::consts::PI / std::f64::consts::SQRT_2)
            / (3.0 * std::f64::consts::PI / 4.0)
    );
}
