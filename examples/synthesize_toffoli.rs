//! Three-qubit synthesis (paper §6.2 / Theorem 12): Toffoli in 11 generic
//! two-qubit gates, each of which is a single AshN pulse — versus 24 CNOTs
//! from plain Shannon decomposition.
//!
//! ```bash
//! cargo run --release --example synthesize_toffoli
//! ```

use ashn::core::scheme::AshnScheme;
use ashn::gates::kak::weyl_coordinates;
use ashn::math::{CMat, Complex};
use ashn::synth::qsd::{qsd, SynthBasis};
use ashn::synth::three_qubit::decompose_three_qubit;

fn toffoli() -> CMat {
    let mut t = CMat::identity(8);
    t[(6, 6)] = Complex::ZERO;
    t[(7, 7)] = Complex::ZERO;
    t[(6, 7)] = Complex::ONE;
    t[(7, 6)] = Complex::ONE;
    t
}

fn main() {
    let u = toffoli();

    let generic = decompose_three_qubit(&u);
    println!(
        "Theorem 12: Toffoli = {} two-qubit gates (reconstruction error {:.1e}):",
        generic.two_qubit_count(),
        generic.error(&u)
    );
    let scheme = AshnScheme::new(0.0);
    let mut total_time = 0.0;
    for (i, g) in generic.instructions.iter().enumerate() {
        let coords = weyl_coordinates(&g.matrix);
        let pulse = scheme.compile(coords).expect("every SU(4) compiles");
        total_time += pulse.tau;
        println!(
            "  gate {:>2} [{}] on (q{}, q{}): coords {}, pulse {} τ·g = {:.4}",
            i + 1,
            g.label,
            g.qubits[0],
            g.qubits[1],
            coords,
            pulse.scheme,
            pulse.tau
        );
    }
    println!("  total two-qubit interaction time: {total_time:.3}/g");

    let cnot = qsd(&u, SynthBasis::Cnot);
    let cz_time = cnot.two_qubit_count() as f64 * std::f64::consts::PI / std::f64::consts::SQRT_2;
    println!(
        "\nPlain Shannon decomposition: {} CNOTs (error {:.1e}); on flux-tuned\n\
         CZ hardware that is {:.2}/g of interaction time — {:.1}x more than AshN.",
        cnot.two_qubit_count(),
        cnot.error(&u),
        cz_time,
        cz_time / total_time
    );
}
