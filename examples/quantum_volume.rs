//! A miniature quantum-volume comparison (paper §6.3): same random
//! circuits, three instruction sets, exact heavy-output probabilities —
//! driven end-to-end by the `ashn::Compiler` pipeline.
//!
//! ```bash
//! cargo run --release --example quantum_volume
//! ```

use ashn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), AshnError> {
    let mut rng = StdRng::seed_from_u64(42);
    let d = 4;
    let circuits = 8;
    let noise = QvNoise::with_e_cz(0.012);
    let gate_sets = [GateSet::Cz, GateSet::Sqisw, GateSet::Ashn { cutoff: 1.1 }];
    let compilers: Vec<Compiler> = gate_sets
        .iter()
        .map(|gs| Compiler::new().gate_set(*gs).noise(noise))
        .collect();

    println!(
        "Quantum volume at d = {d}: {circuits} random square circuits on a 2-D\n\
         grid, depolarizing error ∝ gate time (e_CZ = 1.2%, e_1q = 0.1%).\n"
    );
    let mut totals = vec![(0.0f64, 0usize, 0.0f64); gate_sets.len()];
    for _ in 0..circuits {
        let model = sample_model_circuit(d, &mut rng);
        for (k, compiler) in compilers.iter().enumerate() {
            let score = compiler.compile(&model)?.score();
            totals[k].0 += score.hop;
            totals[k].1 += score.two_qubit_gates;
            totals[k].2 += score.interaction_time;
        }
    }
    println!(
        "{:<14} {:>10} {:>14} {:>18} {:>8}",
        "gate set", "mean HOP", "2q gates/circ", "interaction t·g", "pass?"
    );
    for (k, gs) in gate_sets.iter().enumerate() {
        let hop = totals[k].0 / circuits as f64;
        println!(
            "{:<14} {:>10.4} {:>14.1} {:>18.2} {:>8}",
            gs.name(),
            hop,
            totals[k].1 as f64 / circuits as f64,
            totals[k].2 / circuits as f64,
            if hop >= 2.0 / 3.0 { "yes" } else { "no" }
        );
    }
    println!(
        "\nAshN runs each Haar gate as ONE pulse and each routing SWAP as a\n\
         single 3π/4 pulse, so it accumulates the least depolarizing exposure —\n\
         the mechanism behind the paper's Fig. 7 ordering."
    );
    Ok(())
}
