//! Compile-as-a-service: batch synthesis over a process-wide shared,
//! persistent cache.
//!
//! ```bash
//! cargo run --release --example compile_service
//! ```
//!
//! A `CompileService` takes whole batches of SU(4) targets (or full
//! circuits), dedups them by Weyl class *before* any expensive numerical
//! synthesis runs, fans the residual cold work across a deterministic
//! worker pool, and remembers every solved class in a `ShardedCache`
//! that persists across processes.

use ashn::prelude::*;
use ashn::qv::sample_model_circuit;
use ashn::service::OptLevel;
use ashn::synth::basis::AshnBasis;
use ashn_math::randmat::haar_unitary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // Service traffic: 24 distinct Weyl classes fanned out into 96
    // targets (exact repeats + same-class variants dressed with random
    // local gates) — the shape a scheduler feeding a device produces.
    let bases: Vec<_> = (0..24).map(|_| haar_unitary(4, &mut rng)).collect();
    let mut targets = Vec::new();
    for round in 0..4 {
        for base in &bases {
            if round == 0 {
                targets.push(base.clone());
            } else {
                let pre = haar_unitary(2, &mut rng).kron(&haar_unitary(2, &mut rng));
                let post = haar_unitary(2, &mut rng).kron(&haar_unitary(2, &mut rng));
                targets.push(&(&post * base) * &pre);
            }
        }
    }

    let cache = ShardedCache::new();
    let service =
        CompileService::with_cache(AshnBasis::with_cutoff(0.0, 1.1), cache.clone()).workers(4);

    // Cold batch: one EA synthesis per unique class, everything else is
    // served by re-dressing the class representative.
    let cold = service.synthesize_batch(&targets);
    println!(
        "cold batch : {} targets → {} classes ({:.1}x dedup), \
         {} cold syntheses, {:.0} targets/s",
        cold.stats.requests,
        cold.stats.unique_classes,
        cold.stats.dedup_ratio(),
        cold.stats.cold_classes,
        cold.stats.requests_per_sec()
    );
    let worst = targets
        .iter()
        .zip(&cold.circuits)
        .map(|(t, c)| c.as_ref().expect("synthesis").error(t))
        .fold(0.0f64, f64::max);
    println!("             worst target error {worst:.2e}");

    // Warm batch: the same traffic again costs zero synthesis.
    let warm = service.synthesize_batch(&targets);
    println!(
        "warm batch : {} cold syntheses, {:.0} targets/s ({:.1}x faster)",
        warm.stats.cold_classes,
        warm.stats.requests_per_sec(),
        cold.stats.wall_ms / warm.stats.wall_ms
    );

    // The cache outlives the process: save it, boot a fresh service from
    // the file, and the whole corpus is served warm on first contact.
    let path = std::env::temp_dir().join("ashn-example-service.cache");
    let saved = cache.save(&path).expect("save cache");
    let restored = ShardedCache::new();
    let report = restored.warm_start(&path);
    assert!(report.is_warm());
    let disk_service =
        CompileService::with_cache(AshnBasis::with_cutoff(0.0, 1.1), restored).workers(4);
    let disk = disk_service.synthesize_batch(&targets);
    println!(
        "disk-warm  : {} classes reloaded from {}, {} cold syntheses",
        saved,
        path.display(),
        disk.stats.cold_classes
    );
    std::fs::remove_file(&path).ok();

    // Full circuits ride the same cache: compile quantum-volume model
    // circuits (synthesize → route → optimize) as one batch.
    let mut requests = Vec::new();
    for seed in 0..6 {
        let mut mrng = StdRng::seed_from_u64(seed);
        let model = sample_model_circuit(4, &mut mrng);
        let mut circuit = Circuit::new(model.d);
        for layer in &model.layers {
            for ((a, b), gate) in layer {
                circuit.push(Instruction::new(vec![*a, *b], gate.clone(), "su4"));
            }
        }
        requests.push(CompileRequest::new(circuit).opt(OptLevel::Light));
    }
    let compiled = service.compile_batch(&requests);
    let ok = compiled.results.iter().filter(|r| r.is_ok()).count();
    println!(
        "circuits   : {}/{} model circuits compiled (routed + optimized), \
         {} new cold classes",
        ok,
        requests.len(),
        compiled.stats.cold_classes
    );

    // And the facade `Compiler` can point at the very same cache, so
    // interactive compiles and batch service traffic warm each other.
    let compiler = Compiler::new().with_shared_cache(service.cache());
    let mut crng = StdRng::seed_from_u64(99);
    compiler
        .compile(&sample_model_circuit(3, &mut crng))
        .expect("compile");
    let stats = compiler.synth_stats().expect("shared cache stats");
    println!(
        "facade     : Compiler shares the cache — {} entries, {} hits / {} misses process-wide",
        service.cache().len(),
        stats.exact_hits + stats.class_hits,
        stats.misses
    );
}
