//! Simulating the Heisenberg XYZ model — the experiment the paper's
//! discussion singles out as a natural AshN application (§7): each Trotter
//! step `exp(−i·dt·(Jx XX + Jy YY + Jz ZZ))` on a bond is *one point of the
//! Weyl chamber*, hence ONE AshN pulse, where a CNOT instruction set pays
//! three entanglers per bond per step.
//!
//! ```bash
//! cargo run --release --example heisenberg_xyz
//! ```

use ashn::core::scheme::AshnScheme;
use ashn::gates::kak::weyl_coordinates;
use ashn::gates::pauli::{xx, yy, zz};
use ashn::gates::weyl::WeylPoint;
use ashn::math::expm::expm_minus_i_hermitian;
use ashn::math::{c, CMat};
use ashn::sim::StateVector;
use ashn::synth::cnot_basis::decompose_cnot;

fn bond_gate(jx: f64, jy: f64, jz: f64, dt: f64) -> CMat {
    let h = xx().scale(c(jx, 0.0)) + yy().scale(c(jy, 0.0)) + zz().scale(c(jz, 0.0));
    expm_minus_i_hermitian(&h, dt)
}

fn main() {
    // Anisotropic couplings and Trotter step.
    let (jx, jy, jz) = (1.0, 0.7, 0.4);
    let dt = 0.25;
    let n = 6; // chain length
    let steps = 8;

    let gate = bond_gate(jx, jy, jz, dt);
    let coords = weyl_coordinates(&gate);
    let scheme = AshnScheme::new(0.0);
    let pulse = scheme.compile(coords).expect("one pulse per bond gate");
    let cnots = decompose_cnot(&gate).entangler_count();

    println!("XYZ bond gate exp(−i·dt·(JxXX+JyYY+JzZZ)), dt = {dt}:");
    println!("  Weyl coordinates {coords}");
    println!(
        "  AshN: 1 pulse ({}) of τ·g = {:.4}; CNOT basis: {} entanglers",
        pulse.scheme, pulse.tau, cnots
    );

    // Trotterized evolution of a Néel-like initial state on a chain.
    let mut state = StateVector::zero(n);
    let x = ashn::gates::pauli::Pauli::X.matrix();
    for q in (0..n).step_by(2) {
        state.apply(&[q], &x); // |101010…⟩
    }
    println!("\nTrotter evolution of |{}⟩:", "10".repeat(n / 2));
    println!("  step   ⟨Z_0⟩      ⟨Z_1⟩      2q pulses (AshN)   2q gates (CNOT)");
    let mut pulses = 0usize;
    for step in 0..=steps {
        if step > 0 {
            for parity in 0..2 {
                let mut q = parity;
                while q + 1 < n {
                    state.apply(&[q, q + 1], &gate);
                    pulses += 1;
                    q += 2;
                }
            }
        }
        println!(
            "  {:>4} {:>9.5} {:>10.5} {:>15} {:>17}",
            step,
            state.expect_z(0),
            state.expect_z(1),
            pulses,
            pulses * cnots
        );
    }
    println!(
        "\nEvery bond-step is a single native AshN instruction; the CNOT box\n\
         pays {cnots}x the entangler count (and more wall-clock time) for the\n\
         identical physics."
    );
    // Sanity: the bond gate's class lies strictly inside the chamber
    // (generic XYZ point, not a named gate).
    assert!(coords.in_chamber(1e-9));
    assert!(coords.dist(WeylPoint::CNOT) > 1e-3);
}
