//! Quickstart: compile two-qubit gates into single AshN pulses.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use ashn::core::scheme::AshnScheme;
use ashn::core::verify::average_gate_fidelity;
use ashn::gates::kak::weyl_coordinates;
use ashn::gates::two::{b_gate, cnot, iswap, swap};
use ashn::gates::weyl::WeylPoint;
use ashn::synth::ashn_basis::decompose_ashn;

fn main() {
    // A device with XX+YY coupling g, 20% parasitic ZZ, and a drive-strength
    // cutoff r = 1.1 (the paper's "physically feasible" setting).
    let scheme = AshnScheme::with_cutoff(0.2, 1.1);

    println!("One pulse per gate class (h̃ = 0.2, r = 1.1):\n");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>11}",
        "class", "τ·g", "A1/g", "A2/g", "2δ/g", "coord err"
    );
    for (name, p) in [
        ("[CNOT]", WeylPoint::CNOT),
        ("[iSWAP]", WeylPoint::ISWAP),
        ("[SWAP]", WeylPoint::SWAP),
        ("[B]", WeylPoint::B),
        ("[√iSWAP]", WeylPoint::SQISW),
    ] {
        let pulse = scheme.compile(p).expect("AshN spans the Weyl chamber");
        let (a1, a2, two_delta) = pulse.physical_amplitudes(1.0);
        println!(
            "{:<10} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>11.1e}",
            name,
            pulse.tau,
            a1,
            a2,
            two_delta,
            pulse.coordinate_error()
        );
    }

    // Full synthesis: arbitrary unitaries become ONE pulse + single-qubit
    // corrections, where a CNOT instruction set would need up to three.
    println!("\nExact synthesis (pulse + locals) against standard gates:");
    for (name, g) in [
        ("CNOT", cnot()),
        ("SWAP", swap()),
        ("iSWAP", iswap()),
        ("B", b_gate()),
    ] {
        let s = decompose_ashn(&g, &scheme).expect("compiles");
        let f = average_gate_fidelity(&s.circuit.unitary(), &g);
        println!(
            "  {name:<6} coords {} → 1 pulse ({}), duration {:.4}/g, F = {:.12}",
            weyl_coordinates(&g),
            s.pulse.scheme,
            s.pulse.tau,
            f
        );
    }
}
