//! Calibrating the continuous gate set from a handful of probes (paper
//! §5.2): fit a control model, compensate unseen pulses through it.
//!
//! ```bash
//! cargo run --release --example calibration
//! ```

use ashn::cal::cartan::estimate_coords;
use ashn::cal::model::{calibrate, execute_pulse, ControlModel, Hardware};
use ashn::core::scheme::AshnScheme;
use ashn::core::verify::entanglement_fidelity;
use ashn::gates::kak::weyl_coordinates;
use ashn::gates::weyl::WeylPoint;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    // Hidden hardware distortion the experimenter must discover.
    let hw = Hardware {
        true_model: ControlModel {
            amp_scale: 1.06,
            amp_offset: -0.01,
            detuning_offset: 0.025,
        },
        h_ratio: 0.0,
    };
    let scheme = AshnScheme::new(0.0);

    // Step 1: observe what a [CNOT] pulse actually does, via the Cartan
    // double (no knowledge of single-qubit dressing needed).
    let pulse = scheme.compile(WeylPoint::CNOT).unwrap();
    let realized = hw.execute(pulse.drive, pulse.tau);
    let measured = estimate_coords(&realized, WeylPoint::CNOT);
    println!(
        "[CNOT] pulse on miscalibrated hardware lands at {measured}\n\
         (target {}, coordinate error {:.4})\n",
        WeylPoint::CNOT,
        measured.gate_dist(WeylPoint::CNOT)
    );

    // Step 2: fit the 3-parameter control model from four probe pulses.
    let probes: Vec<_> = [
        WeylPoint::CNOT,
        WeylPoint::SWAP,
        WeylPoint::B,
        WeylPoint::SQISW,
    ]
    .iter()
    .map(|&p| {
        let pl = scheme.compile(p).unwrap();
        (pl.drive, pl.tau)
    })
    .collect();
    let fitted = calibrate(&hw, &probes, 5000, &mut rng);
    println!(
        "fitted model: scale {:.4} (true {:.4}), offset {:.4} (true {:.4}), detuning {:.4} (true {:.4})\n",
        fitted.amp_scale,
        hw.true_model.amp_scale,
        fitted.amp_offset,
        hw.true_model.amp_offset,
        fitted.detuning_offset,
        hw.true_model.detuning_offset
    );

    // Step 3: the whole continuous set is now calibrated at once.
    println!("unseen targets, before/after compensation:");
    for target in [
        WeylPoint::new(0.7, 0.2, 0.1),
        WeylPoint::new(0.5, 0.4, -0.3),
        WeylPoint::ISWAP,
    ] {
        let pl = scheme.compile(target).unwrap();
        let ideal = pl.unitary();
        let raw = execute_pulse(&hw, &pl, None);
        let fixed = execute_pulse(&hw, &pl, Some(&fitted));
        println!(
            "  {target}: F {:.6} → {:.6} (realized coords {} → {})",
            entanglement_fidelity(&ideal, &raw),
            entanglement_fidelity(&ideal, &fixed),
            weyl_coordinates(&raw),
            weyl_coordinates(&fixed),
        );
    }
}
