//! The end-to-end `ashn::Compiler` pipeline, and how to plug in a brand-new
//! native gate set.
//!
//! One model circuit is compiled — synthesize → route → schedule →
//! simulate — for the paper's three gate sets *and* for a user-defined
//! B-gate basis implemented right here in ~30 lines: the `Basis` trait is
//! the only integration point, so a new native basis needs no changes to
//! routing, scoring, or the compiler itself.
//!
//! ```bash
//! cargo run --release --example compiler_pipeline
//! ```

use ashn::prelude::*;
use ashn::synth::b_span::decompose_two_b;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The B-gate basis (paper §6.4): `[B] = CAN(π/4, π/8, 0)` is the unique
/// class whose *two* interleaved applications reach the whole Weyl chamber.
struct BGateBasis;

impl Basis for BGateBasis {
    fn name(&self) -> String {
        "B-gate".into()
    }

    fn synthesize(&self, u: &CMat) -> Result<Circuit, SynthError> {
        decompose_two_b(u)
            .map(Into::into)
            .map_err(|e| SynthError::Convergence {
                basis: self.name(),
                detail: e.to_string(),
            })
    }

    fn expected_entanglers(&self, u: &CMat) -> usize {
        // Identity-class targets need none; everything else needs two.
        let p = weyl_coordinates(u);
        if p.dist(WeylPoint::IDENTITY) < 1e-9 {
            0
        } else {
            2
        }
    }
}

fn main() -> Result<(), AshnError> {
    let mut rng = StdRng::seed_from_u64(11);
    let d = 4;
    let noise = QvNoise::with_e_cz(0.012);
    let model = sample_model_circuit(d, &mut rng);

    println!(
        "One {d}-qubit model circuit through the full pipeline\n\
         (synthesize -> route -> schedule -> simulate):\n"
    );
    println!(
        "{:<14} {:>10} {:>10} {:>18}",
        "basis", "HOP", "2q gates", "interaction t·g"
    );

    // The paper's gate sets, via the enum dispatcher...
    for gs in [GateSet::Cz, GateSet::Sqisw, GateSet::Ashn { cutoff: 1.1 }] {
        let compiled = Compiler::new().gate_set(gs).noise(noise).compile(&model)?;
        report(&compiled);
    }
    // ...and a user-defined basis, exactly the same pipeline.
    let compiled = Compiler::new()
        .basis(BGateBasis)
        .noise(noise)
        .compile(&model)?;
    report(&compiled);

    // The optimizer slots in between routing and scheduling: maximal
    // two-qubit runs (routed SWAP + layer gate, repeated pairings) are
    // recompiled as single AshN pulses, and single-qubit runs merge.
    let optimized = Compiler::new()
        .gate_set(GateSet::Ashn { cutoff: 1.1 })
        .noise(noise)
        .opt_level(OptLevel::Default)
        .compile(&model)?;
    let score = optimized.score();
    println!(
        "{:<14} {:>10.4} {:>10} {:>18.2}",
        format!("{} +opt", optimized.basis_name()),
        score.hop,
        score.two_qubit_gates,
        score.interaction_time,
    );
    if let Some(stats) = optimized.opt_stats() {
        println!("\nOptimizer (OptLevel::Default): {stats}");
    }

    println!(
        "\nAshN needs one pulse per gate (SWAPs included); the B-gate basis\n\
         always needs two, and CZ three — the interaction-time column is the\n\
         noise exposure that decides the quantum-volume ordering. The\n\
         optimized AshN row shows the DAG optimizer recovering further\n\
         gates on top of the single-pulse advantage."
    );
    Ok(())
}

fn report(compiled: &Compiled) {
    let score = compiled.score();
    println!(
        "{:<14} {:>10.4} {:>10} {:>18.2}",
        compiled.basis_name(),
        score.hop,
        score.two_qubit_gates,
        score.interaction_time,
    );
}
